"""Metrics registry: counters, gauges, fixed-bucket histograms, merge.

The registry is the numeric half of the telemetry layer (the tracer is
the temporal half).  Three metric types, all supporting labels
(``counter.inc(5, scope="cross", rack=2)``):

- :class:`Counter` — monotonically increasing totals (bytes shipped,
  kernel dispatches, retries);
- :class:`Gauge` — last-written values (makespan of the latest run);
- :class:`Histogram` — fixed-bucket distributions with quantile
  estimates (racks accessed per stripe, per-stripe repair seconds).

Registries serialise to plain dicts (:meth:`MetricsRegistry.snapshot`)
and **merge deterministically** (:meth:`MetricsRegistry.merge`): the
parallel experiment driver gives each run a fresh registry in whatever
worker process executes it, ships the snapshot back, and folds them in
run order — so the aggregate is identical for any worker count.

Instrumented hot paths use the *current* registry
(:func:`current_registry`), a process-global slot installed by
:func:`telemetry_scope`.  When no scope is active the slot is ``None``
and instrumentation reduces to one global load and an ``is None``
check — the "disabled" cost the kernel bench bounds at <5%.

:class:`~repro.cache.BoundedCache` instances constructed with a
``name`` self-register here (:func:`register_cache`, weakly) so cache
effectiveness shows up in ``repro-car metrics`` without call-site
changes.
"""

from __future__ import annotations

import json
import math
import weakref
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_registry",
    "default_registry",
    "telemetry_scope",
    "register_cache",
    "cache_stats",
    "DEFAULT_BUCKETS",
    "COUNT_BUCKETS",
]

#: Default histogram bucket upper bounds — spans sub-millisecond kernel
#: times through multi-second recoveries and small integer counts alike.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
    50.0, 100.0, math.inf,
)

#: Bucket preset for small integer counts (racks accessed, retries):
#: exact through 8, coarser beyond.
COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 24, 32, 64, math.inf,
)

_EMPTY: tuple = ()


def _label_key(labels: dict) -> tuple:
    if not labels:
        return _EMPTY
    return tuple(sorted(labels.items()))


def _key_labels(key: tuple) -> dict:
    return dict(key)


class Counter:
    """A monotonically increasing metric, one value per label set."""

    kind = "counter"
    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[tuple, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name}: negative increment {amount}"
            )
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        """Current value of one labelled series (0 if never touched)."""
        return self._series.get(_label_key(labels), 0)

    @property
    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._series.values())

    def _to_series(self) -> list[dict]:
        return [
            {"labels": _key_labels(k), "value": v}
            for k, v in sorted(self._series.items())
        ]

    def _merge_series(self, series: list[dict]) -> None:
        for s in series:
            key = _label_key(s["labels"])
            self._series[key] = self._series.get(key, 0) + s["value"]


class Gauge:
    """A last-written value, one per label set."""

    kind = "gauge"
    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        """Overwrite the labelled series."""
        self._series[_label_key(labels)] = value

    def add(self, amount: float, **labels) -> None:
        """Adjust the labelled series by ``amount`` (may be negative)."""
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        """Current value (0 if never written)."""
        return self._series.get(_label_key(labels), 0)

    def _to_series(self) -> list[dict]:
        return [
            {"labels": _key_labels(k), "value": v}
            for k, v in sorted(self._series.items())
        ]

    def _merge_series(self, series: list[dict]) -> None:
        # Merge order is run order, so "last write wins" is well defined.
        for s in series:
            self._series[_label_key(s["labels"])] = s["value"]


class Histogram:
    """Fixed-bucket distribution with counts, sum, and quantiles.

    Args:
        buckets: ascending upper bounds; a final ``+inf`` bound is
            appended if missing, so every observation lands somewhere.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "_series")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram {name}: buckets must be ascending, got {bounds}"
            )
        if bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        self.name = name
        self.help = help
        self.buckets = bounds
        # label key -> [per-bucket counts, count, sum]
        self._series: dict[tuple, list] = {}

    def _state(self, key: tuple) -> list:
        state = self._series.get(key)
        if state is None:
            state = [[0] * len(self.buckets), 0, 0.0]
            self._series[key] = state
        return state

    def observe(self, value: float, **labels) -> None:
        """Record one observation into its bucket."""
        state = self._state(_label_key(labels))
        counts, _, _ = state
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        state[1] += 1
        state[2] += value

    def count(self, **labels) -> int:
        """Observations recorded for one label set."""
        state = self._series.get(_label_key(labels))
        return state[1] if state else 0

    def sum(self, **labels) -> float:
        """Sum of observations for one label set."""
        state = self._series.get(_label_key(labels))
        return state[2] if state else 0.0

    def mean(self, **labels) -> float:
        """Mean observation (0 when empty)."""
        n = self.count(**labels)
        return self.sum(**labels) / n if n else 0.0

    def quantile(self, q: float, **labels) -> float:
        """Fixed-bucket quantile estimate: the bound of the bucket where
        the cumulative count first reaches ``q`` (finite buckets only —
        the overflow bucket reports the last finite bound)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        state = self._series.get(_label_key(labels))
        if not state or state[1] == 0:
            return 0.0
        counts, total, _ = state
        target = q * total
        cum = 0
        for i, bound in enumerate(self.buckets):
            cum += counts[i]
            if cum >= target and cum > 0:
                if math.isinf(bound):
                    return self.buckets[-2] if len(self.buckets) > 1 else 0.0
                return bound
        return self.buckets[-2] if len(self.buckets) > 1 else 0.0

    def _to_series(self) -> list[dict]:
        return [
            {
                "labels": _key_labels(k),
                "bucket_counts": list(counts),
                "count": count,
                "sum": total,
            }
            for k, (counts, count, total) in sorted(self._series.items())
        ]

    def _merge_series(self, series: list[dict]) -> None:
        for s in series:
            state = self._state(_label_key(s["labels"]))
            incoming = s["bucket_counts"]
            if len(incoming) != len(self.buckets):
                raise ConfigurationError(
                    f"histogram {self.name}: bucket layout mismatch "
                    f"({len(incoming)} vs {len(self.buckets)})"
                )
            for i, c in enumerate(incoming):
                state[0][i] += c
            state[1] += s["count"]
            state[2] += s["sum"]


class _NullMetric:
    """Accepts every metric operation and does nothing (disabled registry)."""

    __slots__ = ()
    kind = "null"
    name = help = ""
    buckets: tuple[float, ...] = (math.inf,)
    total = 0.0

    def inc(self, amount: float = 1, **labels) -> None: ...
    def set(self, value: float, **labels) -> None: ...
    def add(self, amount: float, **labels) -> None: ...
    def observe(self, value: float, **labels) -> None: ...
    def value(self, **labels) -> float:
        return 0.0
    def count(self, **labels) -> int:
        return 0
    def sum(self, **labels) -> float:
        return 0.0
    def mean(self, **labels) -> float:
        return 0.0
    def quantile(self, q: float, **labels) -> float:
        return 0.0


_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Named metrics with get-or-create accessors and deterministic merge.

    Args:
        enabled: when False every accessor returns a shared no-op
            metric, so an explicitly disabled registry can be injected
            where a real one is expected at zero recording cost.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        if not self.enabled:
            return _NULL_METRIC
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help=help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram (buckets apply on first creation)."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    # -- serialisation / aggregation -----------------------------------

    def snapshot(self, include_caches: bool = False) -> dict:
        """JSON-ready state of every metric (sorted by name).

        Args:
            include_caches: add a ``"caches"`` section with the stats of
                every named :class:`~repro.cache.BoundedCache` alive in
                *this process* (see :func:`cache_stats`).  Cache stats
                are process-local truth, not mergeable run deltas, so
                they are excluded from per-run snapshots by default.
        """
        metrics = {}
        for name in sorted(self._metrics):
            m = self._metrics[name]
            entry = {"kind": m.kind, "help": m.help, "series": m._to_series()}
            if isinstance(m, Histogram):
                entry["buckets"] = [
                    "inf" if math.isinf(b) else b for b in m.buckets
                ]
            metrics[name] = entry
        out = {"metrics": metrics}
        if include_caches:
            out["caches"] = cache_stats()
        return out

    def merge(self, other: "MetricsRegistry | dict") -> "MetricsRegistry":
        """Fold another registry (or a snapshot dict) into this one.

        Counters and histograms add; gauges take the incoming value
        (merge in run order for a deterministic aggregate).  Returns
        ``self`` so merges chain.
        """
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name, entry in snap.get("metrics", {}).items():
            kind = entry["kind"]
            if kind == "counter":
                metric = self.counter(name, help=entry.get("help", ""))
            elif kind == "gauge":
                metric = self.gauge(name, help=entry.get("help", ""))
            elif kind == "histogram":
                buckets = tuple(
                    math.inf if b == "inf" else float(b)
                    for b in entry.get("buckets", [])
                ) or DEFAULT_BUCKETS
                metric = self.histogram(
                    name, help=entry.get("help", ""), buckets=buckets
                )
            else:
                raise ConfigurationError(
                    f"snapshot metric {name!r} has unknown kind {kind!r}"
                )
            if not isinstance(metric, _NullMetric):
                metric._merge_series(entry["series"])
        return self

    def write_json(self, path: str | Path, include_caches: bool = True) -> Path:
        """Persist a snapshot as pretty-printed JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.snapshot(include_caches=include_caches),
                       indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        return path


#: The process-global *current* registry; ``None`` = telemetry disabled.
#: Hot paths read this directly: one module-attribute load + ``is None``.
CURRENT: MetricsRegistry | None = None

_DEFAULT: MetricsRegistry | None = None


def current_registry() -> MetricsRegistry | None:
    """The active registry installed by :func:`telemetry_scope`, if any."""
    return CURRENT


def default_registry() -> MetricsRegistry:
    """The lazily created process-global default registry."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = MetricsRegistry()
    return _DEFAULT


@contextmanager
def telemetry_scope(registry: MetricsRegistry | None = None):
    """Install ``registry`` (default: the process default) as current.

    Instrumented code inside the scope records into it; on exit the
    previous registry (usually ``None``) is restored.  Yields the
    installed registry.
    """
    global CURRENT
    registry = registry if registry is not None else default_registry()
    previous = CURRENT
    CURRENT = registry
    try:
        yield registry
    finally:
        CURRENT = previous


# -- named-cache registration ------------------------------------------

#: name -> weak refs of live BoundedCache instances carrying that name.
_CACHES: dict[str, list] = {}


def register_cache(name: str, cache: object) -> None:
    """Register a named cache for :func:`cache_stats` (held weakly).

    Called by :class:`repro.cache.BoundedCache` when constructed with a
    ``name``; several instances may share one name (e.g. every
    ``RSCode``'s repair cache) and their stats aggregate.
    """
    refs = _CACHES.setdefault(name, [])
    refs.append(weakref.ref(cache))


def cache_stats() -> dict[str, dict]:
    """Aggregated hit/miss/eviction/size stats of every live named cache.

    Dead references are pruned as a side effect.  Stats are
    process-local: a worker process's caches are invisible here.
    """
    out: dict[str, dict] = {}
    for name in sorted(_CACHES):
        live = []
        stats = {
            "instances": 0, "hits": 0, "misses": 0, "evictions": 0,
            "entries": 0, "max_entries": 0,
        }
        for ref in _CACHES[name]:
            cache = ref()
            if cache is None:
                continue
            live.append(ref)
            stats["instances"] += 1
            stats["hits"] += cache.hits
            stats["misses"] += cache.misses
            stats["evictions"] += getattr(cache, "evictions", 0)
            stats["entries"] += len(cache)
            stats["max_entries"] += cache.maxsize
        _CACHES[name] = live
        if not live:
            continue
        lookups = stats["hits"] + stats["misses"]
        stats["hit_rate"] = stats["hits"] / lookups if lookups else 0.0
        out[name] = stats
    return out
