"""Zero-dependency span tracer emitting structured JSONL events.

A :class:`Tracer` records two kinds of structured events into one
ordered stream:

- **spans** — named intervals with parent/child nesting (``with
  tracer.span("exec.stripe", stripe_id=3):``), timestamped by an
  *injected clock* so the same tracer works for wall-clock sections
  (default ``time.perf_counter``) and for simulated time
  (:meth:`Tracer.emit_span` takes explicit start/end, which is how the
  recovery simulator reports per-stripe sim-time);
- **point events** — instantaneous facts (a pipeline-stage checkpoint,
  an injected fault, a recovery action) attached to the currently open
  span.

Every record is a plain dict that serialises to one JSON line; the
whole stream round-trips through :meth:`Tracer.write_jsonl` /
:func:`read_jsonl` and is checked by :func:`validate_events` (the same
validation CI runs on emitted artifacts).

Instrumented code paths take a tracer argument defaulting to
:data:`NULL_TRACER`, whose methods are no-ops and whose ``enabled``
flag lets hot paths skip even argument construction — telemetry off
must cost nothing measurable.
"""

from __future__ import annotations

import itertools
import json
import time
from collections.abc import Callable, Iterable
from pathlib import Path

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "read_jsonl",
    "validate_events",
]

#: Keys every record must carry, by record type.
_SPAN_KEYS = ("type", "name", "span_id", "parent_id", "start", "end", "attrs")
_EVENT_KEYS = ("type", "name", "span_id", "time", "attrs")


class _Span:
    """Context manager for one open span (created by :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "start", "attrs")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: int | None = None
        self.start = 0.0

    def set(self, **attrs) -> None:
        """Attach/overwrite attributes while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        t = self._tracer
        self.span_id = next(t._ids)
        self.parent_id = t._stack[-1] if t._stack else None
        t._stack.append(self.span_id)
        self.start = t.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        t = self._tracer
        end = t.clock()
        t._stack.pop()
        if exc is not None:
            self.attrs["error"] = f"{exc_type.__name__}: {exc}"
        t._append(
            {
                "type": "span",
                "name": self.name,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "start": self.start,
                "end": end,
                "attrs": self.attrs,
            }
        )


class Tracer:
    """Records spans and point events as JSON-ready dicts.

    Args:
        clock: zero-argument callable returning monotonically
            non-decreasing floats.  Defaults to ``time.perf_counter``;
            tests inject a counter for determinism, and simulated-time
            callers bypass it entirely via :meth:`emit_span`.
        sink: optional callable invoked with each completed record
            (e.g. a streaming JSONL writer); records are always also
            kept in :attr:`events`.

    Not thread-safe (like the kernels it instruments); use one tracer
    per process/worker and merge the JSONL streams.
    """

    #: Hot paths check this before building event attributes.
    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        sink: Callable[[dict], None] | None = None,
    ) -> None:
        self.clock = clock
        self.sink = sink
        self.events: list[dict] = []
        self._stack: list[int] = []
        self._ids = itertools.count(1)

    def _append(self, record: dict) -> None:
        self.events.append(record)
        if self.sink is not None:
            self.sink(record)

    def span(self, name: str, **attrs) -> _Span:
        """Open a nested span; use as a context manager."""
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record an instantaneous event under the currently open span."""
        self._append(
            {
                "type": "event",
                "name": name,
                "span_id": self._stack[-1] if self._stack else None,
                "time": self.clock(),
                "attrs": attrs,
            }
        )

    def emit_span(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: int | None = None,
        **attrs,
    ) -> int:
        """Record a completed span with explicit timestamps.

        This is the simulated-time entry point: the fluid simulator
        knows each task's start/finish in *sim* seconds and emits them
        directly instead of sampling the tracer clock.

        Returns:
            The new span's id (usable as ``parent_id`` for children).
        """
        span_id = next(self._ids)
        if parent_id is None and self._stack:
            parent_id = self._stack[-1]
        self._append(
            {
                "type": "span",
                "name": name,
                "span_id": span_id,
                "parent_id": parent_id,
                "start": start,
                "end": end,
                "attrs": attrs,
            }
        )
        return span_id

    def write_jsonl(self, path: str | Path) -> Path:
        """Write every recorded event as one JSON object per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for record in self.events:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return path


class NullTracer:
    """A tracer whose every operation is a no-op (telemetry disabled)."""

    enabled = False
    events: list[dict] = []  # always empty; shared read-only sentinel

    class _NullSpan:
        def __enter__(self):
            return self

        def __exit__(self, *exc) -> None:
            return None

        def set(self, **attrs) -> None:
            return None

    _SPAN = _NullSpan()

    def span(self, name: str, **attrs) -> "_NullSpan":
        return self._SPAN

    def event(self, name: str, **attrs) -> None:
        return None

    def emit_span(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: int | None = None,
        **attrs,
    ) -> int:
        return 0


#: Shared no-op tracer; the default for every instrumented code path.
NULL_TRACER = NullTracer()


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a JSONL trace written by :meth:`Tracer.write_jsonl`."""
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _fail(index: int, message: str) -> None:
    raise ValueError(f"event {index}: {message}")


def validate_events(events: Iterable[dict]) -> int:
    """Validate a trace against the JSONL event schema.

    Checks every record is a span or event dict with the required keys
    and sane types/values (``end >= start``, int span ids, dict attrs).
    CI runs this on the telemetry artifact of the smoke experiment.

    Returns:
        The number of records checked.

    Raises:
        ValueError: naming the first offending record and why.
    """
    count = 0
    seen_ids: set[int] = set()
    for i, record in enumerate(events):
        if not isinstance(record, dict):
            _fail(i, f"not an object: {type(record).__name__}")
        rtype = record.get("type")
        if rtype == "span":
            for key in _SPAN_KEYS:
                if key not in record:
                    _fail(i, f"span missing key {key!r}")
            if not isinstance(record["span_id"], int):
                _fail(i, "span_id must be an int")
            parent = record["parent_id"]
            if parent is not None and not isinstance(parent, int):
                _fail(i, "parent_id must be an int or null")
            start, end = record["start"], record["end"]
            if not isinstance(start, (int, float)) or not isinstance(
                end, (int, float)
            ):
                _fail(i, "start/end must be numbers")
            if end < start:
                _fail(i, f"span ends ({end}) before it starts ({start})")
            seen_ids.add(record["span_id"])
        elif rtype == "event":
            for key in _EVENT_KEYS:
                if key not in record:
                    _fail(i, f"event missing key {key!r}")
            if not isinstance(record["time"], (int, float)):
                _fail(i, "time must be a number")
        else:
            _fail(i, f"unknown record type {rtype!r}")
        if not isinstance(record["name"], str) or not record["name"]:
            _fail(i, "name must be a non-empty string")
        if not isinstance(record["attrs"], dict):
            _fail(i, "attrs must be an object")
        count += 1
    return count
