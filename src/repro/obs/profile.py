"""Background resource profiling: RSS, CPU time, GC pressure over a run.

A :class:`ResourceSampler` is a daemon thread that samples the
coordinator process at a fixed interval while a recovery or experiment
batch runs:

- resident set size (``/proc/self/statm`` where available, with a
  ``ru_maxrss`` fallback so the sampler stays zero-dependency);
- cumulative user+system CPU seconds (``os.times``);
- cumulative garbage collections per generation (``gc.get_stats``).

Samples are plain dicts (JSONL-ready, like trace records) and the
summary folds into a :class:`~repro.obs.metrics.MetricsRegistry` as
gauges — :meth:`ResourceSampler.merge_into` runs in the coordinator
process only, *after* workers finish, so the persisted snapshot is
identical for any worker count (the invariance contract the parallel
runner's metrics already keep).

Attachment points: ``PlanExecutor(profiler=...)`` brackets
``execute``/``execute_streaming`` with start/stop, and
``ExperimentRunner(telemetry=dir)`` profiles the whole batch into
``dir/profile.jsonl`` plus ``profile.*`` gauges in ``metrics.json``.
With no profiler attached the cost is one ``is None`` check per
*call*, not per stripe — telemetry off stays free.
"""

from __future__ import annotations

import gc
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = ["ResourceSampler", "current_rss_kib", "profile_scope"]

_PAGE_KIB = os.sysconf("SC_PAGE_SIZE") // 1024 if hasattr(os, "sysconf") else 4


def current_rss_kib() -> int:
    """This process's resident set size in KiB.

    Reads ``/proc/self/statm`` (current RSS) where it exists; falls
    back to ``resource.ru_maxrss`` (peak RSS — monotone, but the best
    portable signal) elsewhere.
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_KIB
    except (OSError, IndexError, ValueError):
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _cpu_seconds() -> float:
    t = os.times()
    return t.user + t.system


def _gc_collections() -> int:
    return sum(s["collections"] for s in gc.get_stats())


class ResourceSampler:
    """Samples process resources on a background thread.

    Args:
        interval: seconds between samples (the first sample is taken
            synchronously at :meth:`start`, the last at :meth:`stop`,
            so even a run shorter than one interval yields two).
        clock: timestamp source for the ``t`` field of each sample
            (defaults to ``time.perf_counter`` — the tracer's clock, so
            samples land on the same axis as spans).

    A sampler is restartable: ``PlanExecutor`` brackets *each*
    ``execute``/``execute_streaming`` call with start/stop, so one
    sampler attached to a reused executor accumulates samples across
    calls.  ``start`` while already running raises; ``stop`` when not
    running is a no-op.
    """

    def __init__(self, interval: float = 0.05, clock=time.perf_counter) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.clock = clock
        self.samples: list[dict] = []
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ResourceSampler":
        """Take the first sample and launch the sampling thread."""
        if self._thread is not None:
            raise RuntimeError("ResourceSampler already running")
        self._stop.clear()
        self._sample()
        self._thread = threading.Thread(
            target=self._loop, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take the final sample (no-op if stopped)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        self._sample()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample()

    def _sample(self) -> None:
        self.samples.append(
            {
                "type": "resource",
                "t": self.clock(),
                "rss_kib": current_rss_kib(),
                "cpu_seconds": _cpu_seconds(),
                "gc_collections": _gc_collections(),
            }
        )

    # -- results ---------------------------------------------------------

    def summary(self) -> dict:
        """Peak/delta summary over the recorded samples."""
        if not self.samples:
            return {
                "samples": 0,
                "peak_rss_kib": 0,
                "cpu_seconds": 0.0,
                "gc_collections": 0,
                "duration_seconds": 0.0,
            }
        first, last = self.samples[0], self.samples[-1]
        return {
            "samples": len(self.samples),
            "peak_rss_kib": max(s["rss_kib"] for s in self.samples),
            "cpu_seconds": last["cpu_seconds"] - first["cpu_seconds"],
            "gc_collections": last["gc_collections"]
            - first["gc_collections"],
            "duration_seconds": last["t"] - first["t"],
        }

    def merge_into(self, registry) -> dict:
        """Write the summary into ``registry`` as ``profile.*`` gauges.

        Gauges, deliberately: the sampler describes *this coordinator
        process*, so on merge the coordinator's last write wins and the
        aggregate snapshot is worker-count invariant.  Returns the
        summary it wrote.
        """
        summary = self.summary()
        registry.gauge(
            "profile.peak_rss_kib", help="peak coordinator RSS while sampled"
        ).set(summary["peak_rss_kib"])
        registry.gauge(
            "profile.cpu_seconds", help="coordinator CPU time while sampled"
        ).set(summary["cpu_seconds"])
        registry.gauge(
            "profile.gc_collections", help="GC collections while sampled"
        ).set(summary["gc_collections"])
        registry.gauge(
            "profile.samples", help="resource samples recorded"
        ).set(summary["samples"])
        return summary

    def write_jsonl(self, path: str | Path) -> Path:
        """Persist every sample as one JSON object per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for sample in self.samples:
                fh.write(json.dumps(sample, sort_keys=True) + "\n")
        return path


@contextmanager
def profile_scope(
    registry=None, interval: float = 0.05, path: str | Path | None = None
):
    """Sample for the duration of a block; optionally persist/merge.

    Args:
        registry: when given, :meth:`ResourceSampler.merge_into` it on
            exit.
        interval: sampling interval in seconds.
        path: when given, write ``profile.jsonl`` samples there on exit.

    Yields:
        The running :class:`ResourceSampler`.
    """
    sampler = ResourceSampler(interval=interval)
    sampler.start()
    try:
        yield sampler
    finally:
        sampler.stop()
        if registry is not None:
            sampler.merge_into(registry)
        if path is not None:
            sampler.write_jsonl(path)
