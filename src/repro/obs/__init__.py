"""Unified telemetry: span tracing, metrics, and profiling hooks.

The observability layer correlates the repo's previously disjoint
signal sources — traffic reports, fault logs, cache counters — per
stripe, per rack, and per run:

- :mod:`repro.obs.tracer` — zero-dependency span tracer (parent/child
  nesting, injected clock, structured JSONL events);
- :mod:`repro.obs.metrics` — Counter/Gauge/Histogram registry with
  labels, deterministic ``merge()`` for the parallel experiment
  driver, and named-cache registration;
- :mod:`repro.obs.report` — plain-text rendering behind the
  ``repro-car trace`` / ``repro-car metrics`` subcommands;
- :mod:`repro.obs.export` — Chrome Trace Event Format (Perfetto /
  ``chrome://tracing``) and collapsed-stack flamegraph export;
- :mod:`repro.obs.attribution` — per-stage time/bytes breakdown,
  slowest stripes, and critical path (``repro-car report``);
- :mod:`repro.obs.profile` — background RSS/CPU/GC sampler attachable
  to executors and experiment batches;
- :mod:`repro.obs.progress` — rate-limited heartbeats (JSONL + opt-in
  TTY status line) for streaming/durable recoveries;
- :mod:`repro.obs.regress` — benchmark-baseline comparison and the
  committed ``BENCH_HISTORY.jsonl`` trajectory.

Everything is no-op-cheap when disabled: instrumented paths default to
:data:`~repro.obs.tracer.NULL_TRACER` and check the current-registry
slot (one global load) before recording.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.attribution import (
    TraceAttribution,
    attribute,
    render_attribution,
    stage_of,
)
from repro.obs.export import (
    to_chrome_trace,
    to_collapsed_stacks,
    validate_chrome_trace,
    write_chrome_trace,
    write_collapsed_stacks,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    cache_stats,
    current_registry,
    default_registry,
    register_cache,
    telemetry_scope,
)
from repro.obs.profile import ResourceSampler, current_rss_kib, profile_scope
from repro.obs.progress import ProgressReporter, jsonl_sink
from repro.obs.report import render_metrics, render_trace
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    read_jsonl,
    validate_events,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "read_jsonl",
    "validate_events",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "COUNT_BUCKETS",
    "current_registry",
    "default_registry",
    "telemetry_scope",
    "register_cache",
    "cache_stats",
    "render_trace",
    "render_metrics",
    "TraceAttribution",
    "attribute",
    "render_attribution",
    "stage_of",
    "to_chrome_trace",
    "to_collapsed_stacks",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_collapsed_stacks",
    "ResourceSampler",
    "current_rss_kib",
    "profile_scope",
    "ProgressReporter",
    "jsonl_sink",
]
