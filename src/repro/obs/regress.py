"""Benchmark regression detection against committed baselines.

The repo commits pytest-benchmark artifacts (``BENCH_kernels.json``,
``BENCH_durable.json``, ``BENCH_stream.json``, ``BENCH_regen.json``)
but until now nothing *read* them — a PR could halve streaming
throughput and CI would stay green.  This module is the read side:

- :func:`load_bench` normalises a pytest-benchmark JSON file into
  ``{bench name: {mean_seconds, extra}}``, keeping the numeric
  ``extra_info`` figures the stream bench publishes (stripes/s, peak
  allocation, RSS);
- :func:`compare` diffs a fresh run against a baseline with a
  configurable tolerance, direction-aware per metric — wall-time and
  byte metrics regress *upward*, throughput/speedup metrics regress
  *downward* — and reports regressions, improvements, and coverage
  gaps (benches present on only one side);
- :func:`history_entry` / :func:`append_history` maintain
  ``BENCH_HISTORY.jsonl``, the committed PR-over-PR trajectory (one
  compact JSON line per suite per recording).

``tools/bench_compare.py`` wraps this as the CLI the CI
``bench-regress`` job gates on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "BenchDelta",
    "ComparisonReport",
    "load_bench",
    "compare",
    "render_comparison",
    "history_entry",
    "append_history",
]

#: Metric-name predicates: metrics where *larger* is better.
_HIGHER_SUFFIXES = ("_per_second",)
_HIGHER_MARKERS = ("speedup", "hit_rate", "ratio_eager_over_streaming")
#: extra_info metrics where *smaller* is better (bytes, memory, time).
_LOWER_SUFFIXES = ("_bytes", "_kib", "_seconds")


def metric_direction(name: str) -> str | None:
    """``"higher"`` / ``"lower"`` is-better for a metric name, or None.

    None means the metric is informational (configuration echoes like
    ``num_stripes`` or ``window``) and is not compared.
    """
    if name == "mean_seconds" or name.endswith(_LOWER_SUFFIXES):
        return "lower"
    if name.endswith(_HIGHER_SUFFIXES) or any(
        marker in name for marker in _HIGHER_MARKERS
    ):
        return "higher"
    return None


def load_bench(path: str | Path) -> dict:
    """Load a pytest-benchmark JSON artifact.

    Returns:
        ``{"suite": <file stem>, "benchmarks": {name: {"mean_seconds":
        float, "extra": {key: number}}}}`` — only numeric, non-bool
        ``extra_info`` values are kept.

    Raises:
        ValueError: not a pytest-benchmark artifact (no ``benchmarks``
            list) or a bench without stats.
    """
    path = Path(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    benches = payload.get("benchmarks")
    if not isinstance(benches, list):
        raise ValueError(
            f"{path}: not a pytest-benchmark artifact (no 'benchmarks' list)"
        )
    out: dict[str, dict] = {}
    for bench in benches:
        name = bench.get("name")
        stats = bench.get("stats") or {}
        if not isinstance(name, str) or "mean" not in stats:
            raise ValueError(f"{path}: malformed benchmark entry {name!r}")
        extra = {
            k: v
            for k, v in (bench.get("extra_info") or {}).items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
        out[name] = {"mean_seconds": float(stats["mean"]), "extra": extra}
    return {"suite": path.stem, "benchmarks": out}


@dataclass(frozen=True)
class BenchDelta:
    """One (bench, metric) comparison.

    Attributes:
        bench / metric: what was compared.
        baseline / fresh: the two values.
        direction: ``"higher"`` or ``"lower"`` is better.
        regressed / improved: verdicts at the comparison's tolerance.
    """

    bench: str
    metric: str
    baseline: float
    fresh: float
    direction: str
    regressed: bool
    improved: bool

    @property
    def ratio(self) -> float:
        """fresh / baseline (inf when the baseline is zero)."""
        return self.fresh / self.baseline if self.baseline else float("inf")


@dataclass
class ComparisonReport:
    """Outcome of diffing a fresh bench run against a baseline."""

    suite: str
    tolerance: float
    deltas: list[BenchDelta] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    new: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.improved]

    @property
    def ok(self) -> bool:
        """True iff nothing regressed beyond tolerance."""
        return not self.regressions


def _delta(
    bench: str, metric: str, base: float, fresh: float, tolerance: float
) -> BenchDelta | None:
    direction = metric_direction(metric)
    if direction is None:
        return None
    if direction == "higher":
        regressed = fresh < base * (1 - tolerance) - 1e-12
        improved = fresh > base * (1 + tolerance) + 1e-12
    else:
        regressed = fresh > base * (1 + tolerance) + 1e-12
        improved = fresh < base * (1 - tolerance) - 1e-12
    return BenchDelta(
        bench=bench,
        metric=metric,
        baseline=base,
        fresh=fresh,
        direction=direction,
        regressed=regressed,
        improved=improved,
    )


def compare(
    baseline: dict, fresh: dict, tolerance: float = 0.25
) -> ComparisonReport:
    """Diff two :func:`load_bench` payloads.

    Args:
        baseline: the committed reference.
        fresh: the run under test.
        tolerance: allowed fractional drift per metric — a lower-is-
            better metric regresses above ``baseline * (1 + tolerance)``,
            a higher-is-better one below ``baseline * (1 - tolerance)``.
            CI uses a generous tolerance (runner hardware varies); the
            unit suite pins exact behaviour with small ones.

    Only benches present on both sides are compared; one-sided benches
    are reported (``missing`` / ``new``) but never fail the comparison
    — smoke runs legitimately execute a subset of a committed suite.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    base_benches = baseline["benchmarks"]
    fresh_benches = fresh["benchmarks"]
    report = ComparisonReport(
        suite=baseline.get("suite", "?"),
        tolerance=tolerance,
        missing=sorted(set(base_benches) - set(fresh_benches)),
        new=sorted(set(fresh_benches) - set(base_benches)),
    )
    for name in sorted(set(base_benches) & set(fresh_benches)):
        base, new = base_benches[name], fresh_benches[name]
        delta = _delta(
            name, "mean_seconds", base["mean_seconds"], new["mean_seconds"],
            tolerance,
        )
        if delta is not None:
            report.deltas.append(delta)
        shared = sorted(set(base["extra"]) & set(new["extra"]))
        for metric in shared:
            delta = _delta(
                name, metric, base["extra"][metric], new["extra"][metric],
                tolerance,
            )
            if delta is not None:
                report.deltas.append(delta)
    return report


def render_comparison(report: ComparisonReport) -> str:
    """Human-readable comparison table (regressions first)."""
    from repro.obs.report import _table

    lines = [
        f"Bench comparison — suite {report.suite}, "
        f"tolerance ±{report.tolerance:.0%}"
    ]
    rows = [
        [
            d.bench,
            d.metric,
            f"{d.baseline:.6g}",
            f"{d.fresh:.6g}",
            f"{d.ratio:.3f}x",
            "REGRESSED" if d.regressed
            else ("improved" if d.improved else "ok"),
        ]
        for d in sorted(
            report.deltas, key=lambda d: (not d.regressed, d.bench, d.metric)
        )
    ]
    if rows:
        lines.append(
            _table(
                ["bench", "metric", "baseline", "fresh", "ratio", "verdict"],
                rows,
            )
        )
    if report.missing:
        lines.append(
            "not run (baseline only): " + ", ".join(report.missing)
        )
    if report.new:
        lines.append("new (no baseline): " + ", ".join(report.new))
    lines.append(
        f"{len(report.regressions)} regression(s), "
        f"{len(report.improvements)} improvement(s), "
        f"{len(report.deltas)} metric(s) compared"
    )
    return "\n".join(lines)


def history_entry(loaded: dict, timestamp: str, label: str | None = None) -> dict:
    """One ``BENCH_HISTORY.jsonl`` line for a :func:`load_bench` payload.

    Args:
        loaded: a :func:`load_bench` result.
        timestamp: ISO date of the recording (caller-supplied so the
            trajectory is reproducible from committed artifacts).
        label: override the suite label (defaults to the file stem).
    """
    return {
        "timestamp": timestamp,
        "suite": label or loaded.get("suite", "?"),
        "benchmarks": {
            name: {"mean_seconds": entry["mean_seconds"], **entry["extra"]}
            for name, entry in sorted(loaded["benchmarks"].items())
        },
    }


def append_history(path: str | Path, entry: dict) -> Path:
    """Append one entry to the JSONL trajectory file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return path
