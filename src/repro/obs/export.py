"""Export recorded traces to standard profiling formats.

Two converters over the JSONL event stream a
:class:`~repro.obs.tracer.Tracer` records (and
:meth:`~repro.experiments.runner.ExperimentRunner.run_all` persists):

- :func:`to_chrome_trace` — Chrome Trace Event Format JSON, loadable
  in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
  Every span becomes a complete (``"ph": "X"``) event and every point
  event an instant (``"ph": "i"``) event.  Process/thread lanes carry
  the cluster structure: the *pid* is the run index (the experiment
  runner tags each record with ``"run"``; untagged records are run 0)
  and the *tid* is the rack the record's ``attrs`` name — so a
  streaming recovery renders as one swimlane per rack plus a
  coordinator lane for rackless spans (windows, solves).
- :func:`to_collapsed_stacks` — the collapsed/folded stack format
  flamegraph tooling consumes (``a;b;c <microseconds>`` per line),
  built from span parent chains with *exclusive* (self) time as the
  sample weight.

Timestamps are rebased so the earliest record sits at zero and scaled
to integer microseconds (the Trace Event unit).  Simulated-time spans
export on the same axis — a sim trace becomes a sim-seconds timeline.

:func:`validate_chrome_trace` schema-checks an export the same way
:func:`~repro.obs.tracer.validate_events` checks the raw stream;
``tools/validate_trace.py`` runs both in CI.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path

__all__ = [
    "to_chrome_trace",
    "to_collapsed_stacks",
    "write_chrome_trace",
    "write_collapsed_stacks",
    "validate_chrome_trace",
    "COORDINATOR_TID",
]

#: Thread lane for records whose attrs name no rack (solves, windows,
#: session bookkeeping) — rendered as the coordinator swimlane.
COORDINATOR_TID = 0

#: Event phases an export may contain (complete, instant, metadata).
_PHASES = frozenset({"X", "i", "M"})


def _micros(seconds: float, origin: float) -> int:
    return round((seconds - origin) * 1_000_000)


def _lane(record: dict) -> tuple[int, int]:
    """(pid, tid) for one record: run index x rack (coordinator = 0)."""
    pid = record.get("run", 0)
    attrs = record.get("attrs")
    rack = attrs.get("rack") if isinstance(attrs, dict) else None
    tid = rack + 1 if isinstance(rack, int) else COORDINATOR_TID
    return pid, tid


def _origin(events: list[dict]) -> float:
    starts = [
        e["start"] if e.get("type") == "span" else e["time"]
        for e in events
        if isinstance(e.get("start" if e.get("type") == "span" else "time"),
                      (int, float))
    ]
    return min(starts) if starts else 0.0


def to_chrome_trace(events: list[dict]) -> dict:
    """Convert a JSONL trace to a Trace Event Format object.

    Args:
        events: records as loaded by :func:`~repro.obs.tracer.read_jsonl`
            (optionally run-tagged by the experiment runner).

    Returns:
        A JSON-ready dict with ``traceEvents`` (metadata + spans +
        instants, in timestamp order) and ``displayTimeUnit``.
    """
    origin = _origin(events)
    out: list[dict] = []
    lanes: set[tuple[int, int]] = set()
    for record in events:
        rtype = record.get("type")
        attrs = record.get("attrs")
        args = dict(attrs) if isinstance(attrs, dict) else {}
        pid, tid = _lane(record)
        lanes.add((pid, tid))
        if rtype == "span":
            args["span_id"] = record.get("span_id")
            if record.get("parent_id") is not None:
                args["parent_id"] = record["parent_id"]
            out.append(
                {
                    "name": record["name"],
                    "cat": "span",
                    "ph": "X",
                    "ts": _micros(record["start"], origin),
                    "dur": max(0, _micros(record["end"], origin)
                               - _micros(record["start"], origin)),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        elif rtype == "event":
            out.append(
                {
                    "name": record["name"],
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": _micros(record["time"], origin),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    out.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    meta: list[dict] = []
    for pid in sorted({pid for pid, _ in lanes}):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": COORDINATOR_TID,
                "args": {"name": f"run {pid}"},
            }
        )
    for pid, tid in sorted(lanes):
        label = "coordinator" if tid == COORDINATOR_TID else f"rack {tid - 1}"
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            }
        )
    return {"traceEvents": meta + out, "displayTimeUnit": "ms"}


def to_collapsed_stacks(events: list[dict]) -> list[str]:
    """Fold span parent chains into collapsed-stack lines.

    Each span contributes its *exclusive* time (duration minus the
    duration of its direct children) to the stack named by its
    root-to-span name chain; equal stacks aggregate.  Lines are sorted
    for determinism; weights are integer microseconds (zero-weight
    stacks are kept so every span name appears).
    """
    spans = {
        e["span_id"]: e
        for e in events
        if e.get("type") == "span" and isinstance(e.get("span_id"), int)
    }
    child_time: dict[int, float] = defaultdict(float)
    for s in spans.values():
        parent = s.get("parent_id")
        if parent in spans:
            child_time[parent] += s["end"] - s["start"]

    def stack(span: dict) -> str:
        names: list[str] = []
        seen: set[int] = set()
        node: dict | None = span
        while node is not None and node["span_id"] not in seen:
            seen.add(node["span_id"])
            names.append(str(node["name"]))
            node = spans.get(node.get("parent_id"))
        return ";".join(reversed(names))

    weights: dict[str, int] = defaultdict(int)
    for s in spans.values():
        self_time = (s["end"] - s["start"]) - child_time[s["span_id"]]
        weights[stack(s)] += max(0, round(self_time * 1_000_000))
    return [f"{name} {weight}" for name, weight in sorted(weights.items())]


def write_chrome_trace(events: list[dict], path: str | Path) -> Path:
    """Write :func:`to_chrome_trace` output as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(to_chrome_trace(events), sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def write_collapsed_stacks(events: list[dict], path: str | Path) -> Path:
    """Write :func:`to_collapsed_stacks` output, one stack per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        "\n".join(to_collapsed_stacks(events)) + "\n", encoding="utf-8"
    )
    return path


def _fail(index: int, message: str) -> None:
    raise ValueError(f"trace event {index}: {message}")


def validate_chrome_trace(payload: dict | list) -> int:
    """Validate an exported Chrome trace object.

    Accepts either the object form (``{"traceEvents": [...]}``) or the
    bare array form the Trace Event spec also allows.

    Returns:
        The number of events checked.

    Raises:
        ValueError: naming the first offending event and why.
    """
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("traceEvents must be a list")
    elif isinstance(payload, list):
        events = payload
    else:
        raise ValueError(
            f"chrome trace must be an object or array, "
            f"got {type(payload).__name__}"
        )
    count = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            _fail(i, f"not an object: {type(event).__name__}")
        phase = event.get("ph")
        if phase not in _PHASES:
            _fail(i, f"unknown phase {phase!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            _fail(i, "name must be a non-empty string")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                _fail(i, f"{key} must be an int")
        if phase != "M":
            if not isinstance(event.get("ts"), (int, float)):
                _fail(i, "ts must be a number")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                _fail(i, f"complete event needs dur >= 0, got {dur!r}")
        if "args" in event and not isinstance(event["args"], dict):
            _fail(i, "args must be an object")
        count += 1
    return count
