"""Bottleneck attribution: where a recorded recovery actually spent time.

Aggregates a JSONL trace (raw records or the run-tagged stream the
experiment runner persists) into the summary the ``repro-car report``
subcommand prints:

- **per-stage breakdown** — every span's *exclusive* (self) time and
  byte attrs folded into named pipeline stages (plan / aggregate /
  ship / journal / verify / execute / simulate).  Self time, not
  inclusive, so the stage totals partition the trace: their sum equals
  the raw sum of span durations minus parent/child double counting,
  and the report's totals are reproducible from the spans by hand;
- **top-k slowest stripes** — the ``exec.stripe`` (or, for simulator
  traces, ``sim.stripe``) spans with the largest durations;
- **critical-path estimate** — the longest root span and the chain of
  largest children inside it, the lower bound on wall time any
  concurrency tuning has to beat.

Everything is pure computation over the event list; nothing here
touches the tracer hot path.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.obs.report import _table

__all__ = [
    "StageBreakdown",
    "TraceAttribution",
    "stage_of",
    "attribute",
    "render_attribution",
]

#: Ordered (stage, name-prefixes) rules; first match wins.  ``exec.``
#: must come after the more specific stream-stage rules.
_STAGE_RULES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("plan", ("solve", "plan")),
    ("aggregate", ("exec.stream.aggregate",)),
    ("ship", ("exec.stream.ship",)),
    ("journal", ("journal",)),
    ("verify", ("verify", "scrub", "integrity")),
    ("execute", ("exec",)),
    ("simulate", ("sim",)),
    ("run", ("run",)),
)

#: Span-attr keys summed into a stage's byte totals.
_BYTE_SUFFIX = "_bytes"


def stage_of(name: str) -> str:
    """The pipeline stage a span/event name is attributed to."""
    for stage, prefixes in _STAGE_RULES:
        if name.startswith(prefixes):
            return stage
    return "other"


@dataclass
class StageBreakdown:
    """One stage's share of a trace."""

    seconds: float = 0.0
    bytes: int = 0
    spans: int = 0
    events: int = 0


@dataclass
class TraceAttribution:
    """Everything ``repro-car report`` renders about one trace.

    Attributes:
        stages: stage name -> :class:`StageBreakdown` (exclusive time).
        total_span_seconds: sum of every span's exclusive time — equal
            to the sum over ``stages`` by construction.
        wall_seconds: latest span end minus earliest span start.
        slowest_stripes: ``(stripe_id, seconds)`` sorted descending.
        stripe_span_name: which span family the stripe ranking used
            (``exec.stripe`` or ``sim.stripe``; empty when neither).
        critical_path: root-to-leaf ``(name, seconds)`` chain of
            largest children inside the longest root span.
    """

    stages: dict[str, StageBreakdown] = field(default_factory=dict)
    total_span_seconds: float = 0.0
    wall_seconds: float = 0.0
    slowest_stripes: list[tuple[int, float]] = field(default_factory=list)
    stripe_span_name: str = ""
    critical_path: list[tuple[str, float]] = field(default_factory=list)

    @property
    def critical_path_seconds(self) -> float:
        """Duration of the critical path's root span (0 when empty)."""
        return self.critical_path[0][1] if self.critical_path else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form (for artifacts and tests)."""
        return {
            "stages": {
                name: {
                    "seconds": b.seconds,
                    "bytes": b.bytes,
                    "spans": b.spans,
                    "events": b.events,
                }
                for name, b in sorted(self.stages.items())
            },
            "total_span_seconds": self.total_span_seconds,
            "wall_seconds": self.wall_seconds,
            "slowest_stripes": [list(t) for t in self.slowest_stripes],
            "stripe_span_name": self.stripe_span_name,
            "critical_path": [list(t) for t in self.critical_path],
            "critical_path_seconds": self.critical_path_seconds,
        }


def _span_bytes(attrs) -> int:
    if not isinstance(attrs, dict):
        return 0
    return sum(
        int(v)
        for k, v in attrs.items()
        if k.endswith(_BYTE_SUFFIX) and isinstance(v, (int, float))
    )


def attribute(events: list[dict], top_k: int = 5) -> TraceAttribution:
    """Aggregate a trace into a :class:`TraceAttribution`.

    Args:
        events: records loaded by :func:`~repro.obs.tracer.read_jsonl`.
        top_k: stripes to keep in the slowest-stripe ranking.
    """
    spans = [
        e
        for e in events
        if e.get("type") == "span"
        and isinstance(e.get("start"), (int, float))
        and isinstance(e.get("end"), (int, float))
    ]
    att = TraceAttribution()
    # Spans are unique per (run, span_id): the runner concatenates
    # per-run streams whose ids restart from 1.
    def key(s):
        return (s.get("run", 0), s["span_id"])

    by_id = {key(s): s for s in spans if isinstance(s.get("span_id"), int)}
    child_time: dict[tuple, float] = defaultdict(float)
    children: dict[tuple, list[dict]] = defaultdict(list)
    for s in spans:
        parent = (s.get("run", 0), s.get("parent_id"))
        if parent in by_id:
            child_time[parent] += s["end"] - s["start"]
            children[parent].append(s)
    for s in spans:
        duration = s["end"] - s["start"]
        self_time = max(0.0, duration - child_time.get(key(s), 0.0))
        stage = att.stages.setdefault(stage_of(str(s["name"])), StageBreakdown())
        stage.seconds += self_time
        stage.bytes += _span_bytes(s.get("attrs"))
        stage.spans += 1
        att.total_span_seconds += self_time
    for e in events:
        if e.get("type") == "event":
            stage = att.stages.setdefault(
                stage_of(str(e.get("name", ""))), StageBreakdown()
            )
            stage.events += 1
    if spans:
        att.wall_seconds = max(s["end"] for s in spans) - min(
            s["start"] for s in spans
        )
    # Slowest stripes: prefer real-time executor spans, fall back to
    # the simulator's sim-time spans.
    for name in ("exec.stripe", "sim.stripe"):
        stripe_spans = [
            s
            for s in spans
            if s["name"] == name
            and isinstance(s.get("attrs"), dict)
            and "stripe_id" in s["attrs"]
        ]
        if stripe_spans:
            ranked = sorted(
                (
                    (s["attrs"]["stripe_id"], s["end"] - s["start"])
                    for s in stripe_spans
                ),
                key=lambda t: (-t[1], t[0]),
            )
            att.slowest_stripes = ranked[:top_k]
            att.stripe_span_name = name
            break
    # Critical path: longest root span, then its largest child, and so
    # on down — the chain any latency optimisation must shorten.
    roots = [s for s in spans if (s.get("run", 0), s.get("parent_id")) not in by_id]
    if roots:
        node = max(roots, key=lambda s: s["end"] - s["start"])
        seen: set[tuple] = set()
        while node is not None and key(node) not in seen:
            seen.add(key(node))
            att.critical_path.append(
                (str(node["name"]), node["end"] - node["start"])
            )
            kids = children.get(key(node))
            node = max(kids, key=lambda s: s["end"] - s["start"]) if kids else None
    return att


def _seconds(value: float) -> str:
    return f"{value:.6f}" if value < 10 else f"{value:.3f}"


def render_attribution(att: TraceAttribution) -> str:
    """Render an attribution as the ``repro-car report`` text."""
    if not att.stages:
        return "No spans recorded — nothing to attribute."
    parts = []
    total = att.total_span_seconds
    rows = [
        [
            name,
            str(b.spans),
            str(b.events),
            _seconds(b.seconds),
            f"{(b.seconds / total if total else 0.0):.1%}",
            str(b.bytes),
        ]
        for name, b in sorted(
            att.stages.items(), key=lambda kv: -kv[1].seconds
        )
    ]
    parts.append(
        "Per-stage breakdown (exclusive span time)\n"
        + _table(
            ["stage", "spans", "events", "self_s", "share", "bytes"], rows
        )
    )
    parts.append(
        f"Totals: span self-time {_seconds(total)} s over wall "
        f"{_seconds(att.wall_seconds)} s"
    )
    if att.slowest_stripes:
        rows = [
            [str(stripe_id), _seconds(seconds)]
            for stripe_id, seconds in att.slowest_stripes
        ]
        parts.append(
            f"Slowest stripes ({att.stripe_span_name})\n"
            + _table(["stripe", "seconds"], rows)
        )
    if att.critical_path:
        rows = [
            [" > " * depth + name, _seconds(seconds)]
            for depth, (name, seconds) in enumerate(att.critical_path)
        ]
        parts.append(
            f"Critical path ({_seconds(att.critical_path_seconds)} s)\n"
            + _table(["span", "seconds"], rows)
        )
    return "\n\n".join(parts)
