"""Plain-text rendering of traces and metrics snapshots.

Backs the ``repro-car trace <trace.jsonl>`` and ``repro-car metrics
<metrics.json>`` subcommands: compact per-stage / per-rack summaries of
a recorded recovery, and a table view of a metrics snapshot including
named-cache effectiveness.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from collections import defaultdict

__all__ = ["render_trace", "render_metrics"]


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _seconds(value: float) -> str:
    return f"{value:.6f}" if value < 10 else f"{value:.3f}"


def _attrs(record: dict) -> dict:
    """A record's attrs, tolerating hand-written/truncated traces."""
    attrs = record.get("attrs")
    return attrs if isinstance(attrs, dict) else {}


def render_trace(events: list[dict]) -> str:
    """Summarise a JSONL trace: spans, stages, racks, faults, sim time."""
    spans = [e for e in events if e.get("type") == "span"]
    points = [e for e in events if e.get("type") == "event"]
    stripes = {
        e["attrs"]["stripe_id"]
        for e in events
        if isinstance(e.get("attrs"), dict) and "stripe_id" in e["attrs"]
    }
    parts = [
        f"Trace: {len(events)} records ({len(spans)} spans, "
        f"{len(points)} events), {len(stripes)} stripes"
    ]

    if spans:
        by_name: dict[str, list[float]] = defaultdict(list)
        for s in spans:
            by_name[s["name"]].append(s["end"] - s["start"])
        rows = [
            [
                name,
                str(len(durs)),
                _seconds(sum(durs)),
                _seconds(sum(durs) / len(durs)),
                _seconds(max(durs)),
            ]
            for name, durs in sorted(by_name.items())
        ]
        parts.append(
            "Spans\n"
            + _table(["name", "count", "total_s", "mean_s", "max_s"], rows)
        )

    stage_events = [p for p in points if p["name"] == "exec.stage"]
    if stage_events:
        by_stage: dict[str, TallyCounter] = defaultdict(TallyCounter)
        for p in stage_events:
            by_stage[_attrs(p).get("stage", "?")][_attrs(p).get("rack")] += 1
        rows = [
            [
                stage,
                str(sum(racks.values())),
                ",".join(str(r) for r in sorted(racks, key=str)),
            ]
            for stage, racks in sorted(by_stage.items())
        ]
        parts.append(
            "Pipeline stages (exec.stage)\n"
            + _table(["stage", "count", "racks"], rows)
        )
        by_rack: TallyCounter = TallyCounter()
        for p in stage_events:
            by_rack[_attrs(p).get("rack")] += 1
        rows = [
            [str(rack), str(count)]
            for rack, count in sorted(by_rack.items(), key=lambda kv: str(kv[0]))
        ]
        parts.append(
            "Per-rack stage checkpoints\n" + _table(["rack", "events"], rows)
        )

    notable = [
        p
        for p in points
        if p["name"].startswith(("fault.", "action.", "exec.degrade"))
    ]
    if notable:
        tally: TallyCounter = TallyCounter(p["name"] for p in notable)
        rows = [[name, str(n)] for name, n in sorted(tally.items())]
        parts.append("Faults & responses\n" + _table(["event", "count"], rows))

    sim_spans = [s for s in spans if s["name"] == "sim.stripe"]
    if sim_spans:
        keys = ("read_s", "transfer_s", "aggregate_s", "decode_s", "fault_s")
        totals = {k: sum(_attrs(s).get(k, 0.0) for s in sim_spans) for k in keys}
        rows = [[k.removesuffix("_s"), _seconds(v)] for k, v in totals.items()]
        parts.append(
            f"Simulated time breakdown ({len(sim_spans)} stripes)\n"
            + _table(["stage", "busy_s"], rows)
        )

    return "\n\n".join(parts)


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def render_metrics(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as text tables."""
    metrics = snapshot.get("metrics", {})
    parts = []
    for kind, title in (
        ("counter", "Counters"),
        ("gauge", "Gauges"),
    ):
        rows = []
        for name, entry in sorted(metrics.items()):
            if entry["kind"] != kind:
                continue
            for series in entry["series"]:
                rows.append(
                    [name, _fmt_labels(series["labels"]), f"{series['value']:g}"]
                )
        if rows:
            parts.append(f"{title}\n" + _table(["name", "labels", "value"], rows))

    rows = []
    for name, entry in sorted(metrics.items()):
        if entry["kind"] != "histogram":
            continue
        for series in entry["series"]:
            count = series["count"]
            mean = series["sum"] / count if count else 0.0
            rows.append(
                [
                    name,
                    _fmt_labels(series["labels"]),
                    str(count),
                    f"{mean:.4g}",
                    f"{series['sum']:.4g}",
                ]
            )
    if rows:
        parts.append(
            "Histograms\n"
            + _table(["name", "labels", "count", "mean", "sum"], rows)
        )

    caches = snapshot.get("caches", {})
    if caches:
        rows = [
            [
                name,
                str(s["instances"]),
                str(s["hits"]),
                str(s["misses"]),
                f"{s.get('hit_rate', 0.0):.1%}",
                f"{s['entries']}/{s['max_entries']}",
                str(s["evictions"]),
            ]
            for name, s in sorted(caches.items())
        ]
        parts.append(
            "Caches\n"
            + _table(
                ["name", "inst", "hits", "misses", "hit_rate", "entries",
                 "evictions"],
                rows,
            )
        )

    return "\n\n".join(parts) if parts else "No metrics recorded."
