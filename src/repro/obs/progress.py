"""Live progress for streaming/durable recoveries: heartbeats + TTY line.

Multi-minute streaming recoveries were previously silent until the
final summary.  A :class:`ProgressReporter` fixes that without touching
the hot loop's cost model: the executor calls :meth:`update` once per
*window* (never per stripe) with absolute counters, and the reporter
decides — against its own clock and a configurable interval — whether
to emit a heartbeat.

Each heartbeat is one JSONL-ready dict carrying stripes done,
throughput (overall stripes/s), windows committed, traffic by scope,
journal lag (intents written but not yet committed — the crash-exposure
window of a durable run), and an ETA extrapolated from the overall
rate.  Sinks are composable: a callable per heartbeat (e.g.
:func:`jsonl_sink`), and/or a text stream — a carriage-return status
line when the stream is a TTY (opt-in via ``tty=True``), one plain
line per heartbeat otherwise.

With no reporter attached the executor pays one ``is None`` check per
window; a reporter whose interval has not elapsed pays one clock read.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = ["ProgressReporter", "jsonl_sink"]


def jsonl_sink(path: str | Path):
    """A heartbeat sink appending one JSON line per heartbeat to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fh = path.open("w", encoding="utf-8")

    def sink(beat: dict) -> None:
        fh.write(json.dumps(beat, sort_keys=True) + "\n")
        fh.flush()

    sink.close = fh.close  # type: ignore[attr-defined]
    return sink


def _rate(value: float) -> str:
    return f"{value:,.0f}" if value >= 10 else f"{value:.2f}"


def _eta(seconds: float | None) -> str:
    if seconds is None:
        return "?"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


class ProgressReporter:
    """Rate-limited progress heartbeats for one recovery run.

    Args:
        total_stripes: expected stripe count (None = unknown; ETA and
            percentage are omitted).
        interval: minimum seconds between heartbeats.  The first
            :meth:`update` and :meth:`finish` always emit.
        sink: callable invoked with each heartbeat dict.
        stream: text stream for the human-readable form.
        tty: render a carriage-return status line on ``stream``
            (opt-in; the caller decides whether the stream is a
            terminal).  Ignored when ``stream`` is None.
        clock: injectable time source (monotonic seconds).

    All counters passed to :meth:`update` are absolute totals, not
    deltas — the reporter is stateless about the run beyond its start
    time, so late attachment or resumed sessions just work.
    """

    def __init__(
        self,
        total_stripes: int | None = None,
        *,
        interval: float = 1.0,
        sink=None,
        stream=None,
        tty: bool = False,
        clock=time.monotonic,
    ) -> None:
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        self.total_stripes = total_stripes
        self.interval = interval
        self.sink = sink
        self.stream = stream
        self.tty = tty
        self.clock = clock
        self.heartbeats = 0
        self._start = clock()
        self._last_emit: float | None = None
        self._needs_newline = False

    # -- executor-facing API --------------------------------------------

    def update(
        self,
        stripes_done: int,
        *,
        windows_done: int = 0,
        cross_rack_bytes: int = 0,
        intra_rack_bytes: int = 0,
        journal_lag: int = 0,
        final: bool = False,
    ) -> dict | None:
        """Record progress; emit a heartbeat if the interval elapsed.

        Returns:
            The heartbeat dict when one was emitted, else None.
        """
        now = self.clock()
        if (
            not final
            and self._last_emit is not None
            and now - self._last_emit < self.interval
        ):
            return None
        self._last_emit = now
        elapsed = now - self._start
        rate = stripes_done / elapsed if elapsed > 0 else 0.0
        eta = None
        if (
            self.total_stripes is not None
            and rate > 0
            and stripes_done < self.total_stripes
        ):
            eta = (self.total_stripes - stripes_done) / rate
        beat = {
            "type": "progress",
            "t": elapsed,
            "stripes_done": stripes_done,
            "total_stripes": self.total_stripes,
            "stripes_per_second": rate,
            "windows_done": windows_done,
            "cross_rack_bytes": cross_rack_bytes,
            "intra_rack_bytes": intra_rack_bytes,
            "journal_lag": journal_lag,
            "eta_seconds": eta,
            "final": final,
        }
        self.heartbeats += 1
        if self.sink is not None:
            self.sink(beat)
        if self.stream is not None:
            self._render(beat)
        return beat

    def finish(
        self,
        stripes_done: int,
        *,
        windows_done: int = 0,
        cross_rack_bytes: int = 0,
        intra_rack_bytes: int = 0,
        journal_lag: int = 0,
    ) -> dict:
        """Emit the final heartbeat unconditionally and close the line."""
        beat = self.update(
            stripes_done,
            windows_done=windows_done,
            cross_rack_bytes=cross_rack_bytes,
            intra_rack_bytes=intra_rack_bytes,
            journal_lag=journal_lag,
            final=True,
        )
        if self.stream is not None and self.tty and self._needs_newline:
            self.stream.write("\n")
            self.stream.flush()
            self._needs_newline = False
        close = getattr(self.sink, "close", None)
        if close is not None:
            close()
        return beat

    # -- rendering -------------------------------------------------------

    def format_line(self, beat: dict) -> str:
        """The one-line human-readable form of a heartbeat."""
        done = beat["stripes_done"]
        total = beat["total_stripes"]
        progress = (
            f"{done}/{total} ({done / total:.0%})"
            if total
            else f"{done} stripes"
        )
        parts = [
            f"recovery {progress}",
            f"{_rate(beat['stripes_per_second'])} stripes/s",
            f"{beat['windows_done']} windows",
            f"cross-rack {beat['cross_rack_bytes']:,} B",
        ]
        if beat["journal_lag"]:
            parts.append(f"journal lag {beat['journal_lag']}")
        if not beat["final"]:
            parts.append(f"ETA {_eta(beat['eta_seconds'])}")
        return " | ".join(parts)

    def _render(self, beat: dict) -> None:
        line = self.format_line(beat)
        if self.tty:
            self.stream.write("\r\x1b[K" + line)
            self._needs_newline = True
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
