"""repro — reproduction of CAR (Shen, Shu, Lee; DSN 2016).

CAR (Cross-rack-Aware Recovery) is a single-failure recovery algorithm
for erasure-coded clustered file systems that minimises and balances
*cross-rack* repair traffic.  This package implements the paper's
contribution and every substrate it runs on:

- :mod:`repro.gf` — GF(2^w) arithmetic (scalar + vectorised buffers);
- :mod:`repro.erasure` — Reed-Solomon codes, repair algebra, and the
  related-work XOR array codes (RDP, X-Code, hybrid recovery);
- :mod:`repro.cluster` — racks/nodes topology, fault-tolerant chunk
  placement, cluster state and failure injection;
- :mod:`repro.recovery` — the CAR algorithm (Theorem 1 selector,
  partial decoding, Algorithm 2 balancer), the RR baseline, planning
  and byte-exact execution;
- :mod:`repro.network` — a max-min fair fluid network simulator;
- :mod:`repro.sim` — Table III hardware profiles and recovery timing;
- :mod:`repro.experiments` — reproductions of Figures 7-10 and the
  Table II/III configurations;
- :mod:`repro.faults` — deterministic fault injection and the
  :class:`RobustExecutor` degradation ladder (aggregated →
  re-planned → direct → typed abort);
- :mod:`repro.durable` — write-ahead recovery journal, checksummed
  in-flight payloads, and crash-resumable :class:`RecoverySession`.

Quick start::

    from repro import quick_recovery_demo
    print(quick_recovery_demo())
"""

from repro.cluster import (
    BandwidthProfile,
    ClusterState,
    ClusterTopology,
    DataStore,
    FailureInjector,
    Placement,
    RandomPlacementPolicy,
)
from repro.durable import (
    JournalReplay,
    RecoveryJournal,
    chunk_checksum,
)
from repro.erasure import RSCode
from repro.faults import (
    BackoffPolicy,
    FaultInjector,
    FaultKind,
    FaultLog,
    FaultSpec,
    PipelineStage,
    RecoveryAbort,
    RobustExecutor,
    recover_with_faults,
)
from repro.recovery import (
    CarStrategy,
    MultiStripeSolution,
    PlanExecutor,
    RandomRecoveryStrategy,
    plan_recovery,
    reduction_ratio,
    traffic_report,
)
from repro.sim import HardwareModel, RecoverySimulator

__version__ = "1.0.0"

__all__ = [
    "BandwidthProfile",
    "ClusterState",
    "ClusterTopology",
    "DataStore",
    "FailureInjector",
    "Placement",
    "RandomPlacementPolicy",
    "RSCode",
    "CarStrategy",
    "RandomRecoveryStrategy",
    "MultiStripeSolution",
    "PlanExecutor",
    "plan_recovery",
    "traffic_report",
    "reduction_ratio",
    "HardwareModel",
    "RecoverySimulator",
    "BackoffPolicy",
    "FaultInjector",
    "FaultKind",
    "FaultLog",
    "FaultSpec",
    "PipelineStage",
    "RecoveryAbort",
    "RobustExecutor",
    "recover_with_faults",
    "RecoveryJournal",
    "JournalReplay",
    "RecoverySession",
    "chunk_checksum",
    "quick_recovery_demo",
    "__version__",
]


def __getattr__(name: str):
    if name == "RecoverySession":
        from repro.durable.session import RecoverySession

        return RecoverySession
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def quick_recovery_demo(seed: int = 7) -> str:
    """Run a tiny CAR-vs-RR comparison and return a summary string.

    A convenience for the README's thirty-second smoke test; see
    ``examples/quickstart.py`` for the annotated version.
    """
    code = RSCode(6, 3)
    topology = ClusterTopology.from_rack_sizes([4, 3, 3, 3])
    placement = RandomPlacementPolicy(rng=seed).place(topology, 20, 6, 3)
    data = DataStore(code, 20, chunk_size=1024, seed=seed)
    state = ClusterState(topology, code, placement, data)
    event = FailureInjector(rng=seed).fail_random_node(state)

    car = CarStrategy().solve(state)
    rr = RandomRecoveryStrategy(rng=seed).solve(state)
    plan = plan_recovery(state, event, car)
    verified = PlanExecutor(state).execute(plan, car).verified
    saving = reduction_ratio(
        traffic_report(rr, 1, "RR"), traffic_report(car, 1, "CAR")
    )
    return (
        f"failed node {event.failed_node} ({event.num_stripes} stripes); "
        f"CAR cross-rack traffic {car.total_cross_rack_traffic()} chunks vs "
        f"RR {rr.total_cross_rack_traffic()} ({saving:.1%} saved); "
        f"reconstruction byte-exact: {verified}"
    )
