"""JSON (de)serialization of experiment artefacts.

Reproducibility plumbing: lets a placement, a failure trace, or a
traffic report be written to disk and reloaded bit-identically, so an
experiment can be re-run against the *exact* layout that produced a
number (rather than trusting seeds across library versions).

Only plain-JSON types are emitted; loaders validate structure and
re-derive every invariant through the normal constructors.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.cluster.placement import Placement
from repro.cluster.topology import BandwidthProfile, ClusterTopology
from repro.errors import ConfigurationError
from repro.recovery.metrics import TrafficReport
from repro.workloads.traces import FailureEventSpec, FailureTrace

__all__ = [
    "topology_to_dict",
    "topology_from_dict",
    "placement_to_dict",
    "placement_from_dict",
    "trace_to_dict",
    "trace_from_dict",
    "traffic_report_to_dict",
    "save_json",
    "load_json",
]


def _require(data: dict, key: str) -> Any:
    try:
        return data[key]
    except (KeyError, TypeError):
        raise ConfigurationError(f"missing field {key!r} in serialized data")


# -- topology ---------------------------------------------------------------


def topology_to_dict(topology: ClusterTopology) -> dict:
    """Serializable form of a topology (rack sizes + bandwidth)."""
    bw = topology.bandwidth
    return {
        "kind": "topology",
        "rack_sizes": list(topology.rack_sizes()),
        "bandwidth": {
            "node_nic_gbps": bw.node_nic_gbps,
            "rack_uplink_gbps": bw.rack_uplink_gbps,
            "core_gbps": None if bw.core_gbps == float("inf") else bw.core_gbps,
        },
    }


def topology_from_dict(data: dict) -> ClusterTopology:
    """Inverse of :func:`topology_to_dict`."""
    if data.get("kind") != "topology":
        raise ConfigurationError("not a serialized topology")
    bw = _require(data, "bandwidth")
    core = bw.get("core_gbps")
    profile = BandwidthProfile(
        node_nic_gbps=_require(bw, "node_nic_gbps"),
        rack_uplink_gbps=_require(bw, "rack_uplink_gbps"),
        core_gbps=float("inf") if core is None else core,
    )
    return ClusterTopology.from_rack_sizes(
        _require(data, "rack_sizes"), bandwidth=profile
    )


# -- placement ---------------------------------------------------------------


def placement_to_dict(placement: Placement) -> dict:
    """Serializable form of a placement (embeds its topology)."""
    return {
        "kind": "placement",
        "topology": topology_to_dict(placement.topology),
        "k": placement.k,
        "m": placement.m,
        "assignment": [
            [stripe, chunk, node]
            for (stripe, chunk), node in placement.iter_chunks()
        ],
    }


def placement_from_dict(data: dict) -> Placement:
    """Inverse of :func:`placement_to_dict` (re-validates everything)."""
    if data.get("kind") != "placement":
        raise ConfigurationError("not a serialized placement")
    topology = topology_from_dict(_require(data, "topology"))
    assignment = {
        (int(s), int(c)): int(n) for s, c, n in _require(data, "assignment")
    }
    return Placement(
        topology, int(_require(data, "k")), int(_require(data, "m")), assignment
    )


# -- failure traces ------------------------------------------------------------


def trace_to_dict(trace: FailureTrace) -> dict:
    """Serializable form of a failure trace."""
    return {
        "kind": "failure_trace",
        "horizon_hours": trace.horizon_hours,
        "events": [[e.time_hours, e.node_id] for e in trace.events],
    }


def trace_from_dict(data: dict) -> FailureTrace:
    """Inverse of :func:`trace_to_dict`."""
    if data.get("kind") != "failure_trace":
        raise ConfigurationError("not a serialized failure trace")
    events = tuple(
        FailureEventSpec(time_hours=float(t), node_id=int(n))
        for t, n in _require(data, "events")
    )
    return FailureTrace(
        events=events, horizon_hours=float(_require(data, "horizon_hours"))
    )


# -- reports (one-way export) ------------------------------------------------


def traffic_report_to_dict(report: TrafficReport) -> dict:
    """Serializable form of a traffic report (export only)."""
    return {
        "kind": "traffic_report",
        "strategy": report.strategy,
        "chunk_size_bytes": report.chunk_size_bytes,
        "per_rack_chunks": list(report.per_rack_chunks),
        "failed_rack": report.failed_rack,
        "lambda_rate": report.lambda_rate,
        "num_stripes": report.num_stripes,
        "total_bytes": report.total_bytes,
    }


# -- files --------------------------------------------------------------------


def save_json(path: str | Path, data: dict) -> None:
    """Write a serialized artefact to ``path``."""
    Path(path).write_text(json.dumps(data, indent=2, sort_keys=True))


def load_json(path: str | Path) -> dict:
    """Read a serialized artefact from ``path``."""
    return json.loads(Path(path).read_text())
