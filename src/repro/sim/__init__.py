"""Timing simulation: hardware profiles and recovery-time estimation."""

from repro.sim.hardware import TABLE_III_PROFILES, HardwareModel, NodeHardware
from repro.sim.recovery_sim import (
    DurabilityCostModel,
    RecoverySimulator,
    RecoveryTiming,
    build_tasks,
)
from repro.sim.timing import (
    SerialRecoveryTiming,
    StripeSerialTimingModel,
    StripeTiming,
)

__all__ = [
    "NodeHardware",
    "HardwareModel",
    "TABLE_III_PROFILES",
    "DurabilityCostModel",
    "RecoverySimulator",
    "RecoveryTiming",
    "build_tasks",
    "SerialRecoveryTiming",
    "StripeSerialTimingModel",
    "StripeTiming",
]
