"""Per-node hardware profiles (the paper's Table III) and timing rates.

The paper's testbed racks are heterogeneous: each rack has a distinct
server class (an AMD Opteron rack, three Xeon generations).  We model
the two rates that matter for recovery timing:

- ``gf_mbps``: sustained GF(2^8) decode throughput (how fast a node can
  compute linear combinations of chunk buffers).  Calibrated from the
  relative single-thread strength of the listed CPUs running a
  table-lookup RS decoder (Jerasure-class, hundreds of MB/s to ~1 GB/s).
- ``disk_read_mbps`` / ``disk_write_mbps``: sequential disk throughput
  for the listed drive classes.

Only the *relative* magnitudes matter for reproducing the paper's
shapes (transmission dominates computation; the compute share shrinks
as k grows); see DESIGN.md's substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import ClusterTopology
from repro.errors import ConfigurationError

__all__ = ["NodeHardware", "TABLE_III_PROFILES", "HardwareModel"]

_MB = 1e6


@dataclass(frozen=True)
class NodeHardware:
    """Hardware profile of one server class.

    Attributes:
        name: profile label (rack name in the paper's Table III).
        cpu_label / memory_gb / os_label / disk_label: descriptive
            fields reproduced from Table III.
        gf_mbps: GF(2^8) decode throughput, MB/s.
        xor_mbps: plain-XOR throughput, MB/s (combining partially
            decoded chunks needs no table lookups, only bitwise XOR, so
            it runs several times faster than GF multiply-accumulate).
        disk_read_mbps / disk_write_mbps: sequential disk rates, MB/s.
        combine_efficiency: per-extra-input throughput gain of a wide
            linear combination.  A ``w``-input combine amortises its
            output writes and loop overhead over the inputs, so decoders
            sustain ``gf_mbps * (1 + combine_efficiency * (w - 1))`` of
            input bandwidth — the effect that makes the computation
            share of recovery time shrink as ``k`` grows (Figure 10(a)).
    """

    name: str
    cpu_label: str
    memory_gb: int
    os_label: str
    disk_label: str
    gf_mbps: float
    disk_read_mbps: float
    disk_write_mbps: float
    xor_mbps: float = 0.0
    combine_efficiency: float = 0.08

    def __post_init__(self) -> None:
        if self.xor_mbps == 0.0:
            # Frozen dataclass: route the default through __setattr__.
            object.__setattr__(self, "xor_mbps", 4.0 * self.gf_mbps)
        for attr in ("gf_mbps", "xor_mbps", "disk_read_mbps", "disk_write_mbps"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive")
        if self.combine_efficiency < 0:
            raise ConfigurationError("combine_efficiency must be >= 0")

    def gf_seconds(self, nbytes: float, inputs: int = 1) -> float:
        """CPU seconds to process ``nbytes`` of GF input.

        Args:
            nbytes: total input bytes across all buffers combined.
            inputs: how many buffers the combination has (wider combines
                run faster per input byte; see ``combine_efficiency``).
        """
        speedup = 1.0 + self.combine_efficiency * max(0, inputs - 1)
        return nbytes / (self.gf_mbps * _MB * speedup)

    def xor_seconds(self, nbytes: float) -> float:
        """CPU seconds to XOR ``nbytes`` of input."""
        return nbytes / (self.xor_mbps * _MB)

    def disk_read_seconds(self, nbytes: float) -> float:
        """Seconds to sequentially read ``nbytes``."""
        return nbytes / (self.disk_read_mbps * _MB)

    def disk_write_seconds(self, nbytes: float) -> float:
        """Seconds to sequentially write ``nbytes``."""
        return nbytes / (self.disk_write_mbps * _MB)


#: The five rack profiles of Table III, in rack order A1..A5.
TABLE_III_PROFILES: tuple[NodeHardware, ...] = (
    NodeHardware(
        name="A1",
        cpu_label="AMD Opteron 2378 Quad-Core",
        memory_gb=16,
        os_label="Fedora 11",
        disk_label="1TB",
        gf_mbps=620.0,
        disk_read_mbps=120.0,
        disk_write_mbps=110.0,
    ),
    NodeHardware(
        name="A2",
        cpu_label="Intel Xeon X5472 3.00GHz Quad-Core",
        memory_gb=8,
        os_label="SUSE Linux Enterprise Server 11",
        disk_label="4TB",
        gf_mbps=1150.0,
        disk_read_mbps=150.0,
        disk_write_mbps=140.0,
    ),
    NodeHardware(
        name="A3",
        cpu_label="Intel Xeon E5506 2.13GHz Quad-Core",
        memory_gb=8,
        os_label="Fedora 10",
        disk_label="1TB",
        gf_mbps=820.0,
        disk_read_mbps=120.0,
        disk_write_mbps=110.0,
    ),
    NodeHardware(
        name="A4",
        cpu_label="Intel Xeon E5420 2.50GHz Quad-Core",
        memory_gb=4,
        os_label="Fedora 10",
        disk_label="300GB",
        gf_mbps=960.0,
        disk_read_mbps=90.0,
        disk_write_mbps=85.0,
    ),
    NodeHardware(
        name="A5",
        cpu_label="Intel Xeon X5472 3GHz Quad-Core",
        memory_gb=8,
        os_label="Ubuntu 10.04.3 LTS",
        disk_label="4TB",
        gf_mbps=1150.0,
        disk_read_mbps=150.0,
        disk_write_mbps=140.0,
    ),
)


class HardwareModel:
    """Maps every node of a topology to its rack's hardware profile.

    Args:
        topology: the cluster.
        rack_profiles: one profile per rack; defaults to Table III's
            profiles (cycled if the topology has more racks).
    """

    def __init__(
        self,
        topology: ClusterTopology,
        rack_profiles: tuple[NodeHardware, ...] | None = None,
    ) -> None:
        profiles = (
            TABLE_III_PROFILES if rack_profiles is None else rack_profiles
        )
        if not profiles:
            raise ConfigurationError("at least one hardware profile required")
        self.topology = topology
        self._by_rack = {
            rack.rack_id: profiles[rack.rack_id % len(profiles)]
            for rack in topology.racks
        }

    def profile(self, node_id: int) -> NodeHardware:
        """The hardware profile of one node."""
        return self._by_rack[self.topology.rack_of(node_id)]

    def rack_profile(self, rack_id: int) -> NodeHardware:
        """The hardware profile shared by one rack's nodes."""
        return self._by_rack[rack_id]
