"""Recovery-time simulation: plan -> task DAG -> fluid network simulation.

Converts a :class:`~repro.recovery.planner.RecoveryPlan` into the task
DAG the fluid simulator executes:

- every raw chunk leaving a node is preceded by a sequential **disk
  read** on that node (serial per-disk resource);
- a rack delegate's **partial decode** (CPU, serial per node) waits for
  its own read plus the intra-rack flows delivering the other chunks;
- the delegate's **cross-rack flow** carries the partially decoded
  chunk and waits for the decode;
- the replacement node's **final combine** waits for everything the
  stripe sent it, then a **disk write** persists the rebuilt chunk.

The result is summarised as a :class:`RecoveryTiming` with the three
quantities the evaluation uses: total recovery time (Figure 9),
decoding computation time, and the network-bottleneck transmission time
(Figure 10).

A :class:`~repro.faults.timeline.FaultTimeline` (from a fault-injected
robust run) can be threaded through: injected disk stalls become serial
tasks on the stalled disk that the stripe's reads queue behind, and
dropped flows become retransmitted full-size flows the real flow waits
for — so fault recovery time lands in ``total_time`` and is broken out
as ``fault_time``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.state import ClusterState
from repro.errors import PlanError
from repro.network.flow import SimTask, flow_task, serial_task
from repro.network.links import FabricModel
from repro.network.simulator import FluidNetworkSimulator, SimResult
from repro.obs import metrics as _metrics
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.recovery.planner import RecoveryPlan, StripePlan
from repro.sim.hardware import HardwareModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.faults.timeline import FaultTimeline

__all__ = [
    "DurabilityCostModel",
    "RecoveryTiming",
    "RecoverySimulator",
    "build_tasks",
]


@dataclass(frozen=True)
class DurabilityCostModel:
    """Simulated-time cost of the durability layer.

    When threaded into :class:`RecoverySimulator`, every stripe pays a
    write-ahead intent append before any work and a commit append (plus
    the payload checksum) after its disk write, both serialised on the
    coordinator's journal disk; every received payload pays a CRC
    verification on the receiving CPU before anything may consume it.

    Attributes:
        journal_append_seconds: one fsynced JSONL append on the journal
            disk (dominated by the sync, not the bytes).
        checksum_bytes_per_second: CRC32 throughput of one core; both
            receipt verification and the commit-payload checksum are
            charged at this rate.
    """

    journal_append_seconds: float = 2e-3
    checksum_bytes_per_second: float = 3e9

    def verify_seconds(self, nbytes: int) -> float:
        """CPU seconds to checksum ``nbytes``."""
        return nbytes / self.checksum_bytes_per_second

    def commit_seconds(self, nbytes: int) -> float:
        """Journal-disk seconds for a commit carrying an nbytes payload."""
        return self.journal_append_seconds + self.verify_seconds(nbytes)


@dataclass(frozen=True)
class RecoveryTiming:
    """Timing summary of one simulated recovery.

    Attributes:
        total_time: simulated makespan, seconds (Figure 9's metric is
            this divided by ``num_chunks``).
        computation_time: summed CPU seconds of every decoding task
            (partial decodes + local folds + final combines) — the
            quantity Figure 10 tracks; CAR redistributes it across
            delegates but barely changes its total.
        transmission_time: network-bottleneck time — bytes through the
            busiest link divided by its capacity; the transmission
            component of Figure 10(a)'s breakdown.
        disk_time: summed disk read/write seconds (not part of the
            paper's breakdown; reported for completeness).
        num_chunks: lost chunks recovered.
        fault_time: busy time attributable to injected faults — disk
            stalls plus retransmitted flows (zero without a timeline).
        num_retries: retransmitted flows the timeline injected.
        durability_time: busy time of the durability layer — journal
            appends and receipt checksums (zero without a cost model).
    """

    total_time: float
    computation_time: float
    transmission_time: float
    disk_time: float
    num_chunks: int
    fault_time: float = 0.0
    num_retries: int = 0
    durability_time: float = 0.0

    @property
    def time_per_chunk(self) -> float:
        """Recovery time per lost chunk (Figure 9's y-axis).

        Zero when nothing was recovered — a zero-stripe plan must not
        blow up reporting code with a division by zero.
        """
        if not self.num_chunks:
            return 0.0
        return self.total_time / self.num_chunks

    @property
    def computation_ratio(self) -> float:
        """Computation share of the transmission+computation breakdown."""
        denom = self.computation_time + self.transmission_time
        return self.computation_time / denom if denom else 0.0

    @property
    def transmission_ratio(self) -> float:
        """Transmission share of the breakdown (Figure 10(a))."""
        return 1.0 - self.computation_ratio


def build_tasks(
    state: ClusterState,
    plan: RecoveryPlan,
    fabric: FabricModel,
    hardware: HardwareModel,
    chunk_size: int,
    include_disk: bool = True,
    timeline: "FaultTimeline | None" = None,
    durability: DurabilityCostModel | None = None,
) -> list[SimTask]:
    """Expand a recovery plan into the simulator's task DAG.

    Args:
        timeline: optional fault perturbations (disk stalls, flow
            retransmissions) to weave into the DAG.
        durability: optional durability costs — per-stripe journal
            intent/commit appends and per-flow receipt checksums.
    """
    tasks: list[SimTask] = []
    for sp in plan.stripe_plans:
        tasks.extend(
            _stripe_tasks(
                state, plan, sp, fabric, hardware, chunk_size, include_disk,
                timeline, durability,
            )
        )
    return tasks


def _stripe_tasks(
    state: ClusterState,
    plan: RecoveryPlan,
    sp: StripePlan,
    fabric: FabricModel,
    hardware: HardwareModel,
    chunk_size: int,
    include_disk: bool,
    timeline: "FaultTimeline | None" = None,
    durability: DurabilityCostModel | None = None,
) -> list[SimTask]:
    s = sp.stripe_id
    repl = plan.replacement_node
    tasks: list[SimTask] = []
    read_ids: dict[int, str] = {}  # chunk index -> disk-read task id
    stall_ids: dict[int, str] = {}  # node -> injected-stall task id

    # The write-ahead intent lands on the coordinator's journal disk
    # before any of the stripe's work may start.
    intent_deps: list[str] = []
    if durability is not None:
        intent_tid = f"s{s}:durable:intent"
        tasks.append(
            serial_task(
                intent_tid,
                resource=("disk", repl),
                duration=durability.journal_append_seconds,
                tag="durable:journal",
            )
        )
        intent_deps = [intent_tid]

    def stall_dep(node: int) -> list[str]:
        """Injected disk stall this stripe's work on ``node`` queues behind."""
        if timeline is None:
            return []
        seconds = timeline.stall_for(s, node)
        if seconds <= 0:
            return []
        if node not in stall_ids:
            tid = f"s{s}:fault:stall:n{node}"
            stall_ids[node] = tid
            tasks.append(
                serial_task(
                    tid,
                    resource=("disk", node),
                    duration=seconds,
                    tag="fault:stall",
                )
            )
        return [stall_ids[node]]

    def read_task(chunk: int, node: int) -> list[str]:
        """Disk read preceding any use of a raw chunk (deduplicated)."""
        if not include_disk:
            # Without modelled disks a stall still delays the node's flows.
            return stall_dep(node)
        if chunk not in read_ids:
            tid = f"s{s}:read:c{chunk}"
            read_ids[chunk] = tid
            tasks.append(
                serial_task(
                    tid,
                    resource=("disk", node),
                    duration=hardware.profile(node).disk_read_seconds(chunk_size),
                    deps=stall_dep(node) + intent_deps,
                    tag="disk:read",
                )
            )
        return [read_ids[chunk]]

    def make_flow(
        tid: str, src_node: int, dst_node: int, path, deps: list[str],
        tag: str,
    ) -> str:
        """A flow, preceded by its injected retransmissions (if any).

        Returns the task id consumers must depend on: the flow itself,
        or — under a durability model — the receiver's checksum
        verification, so nothing downstream touches an unverified
        payload (mirroring the executor's delivery contract).
        """
        retries = timeline.retries_for(s, src_node) if timeline else 0
        prev = list(deps) + intent_deps
        for i in range(1, retries + 1):
            rid = f"{tid}:retry{i}"
            tasks.append(
                flow_task(
                    rid,
                    path=path,
                    size_bytes=chunk_size,
                    deps=prev,
                    tag="xfer:retry",
                )
            )
            prev = [rid]
        tasks.append(
            flow_task(tid, path=path, size_bytes=chunk_size, deps=prev, tag=tag)
        )
        if durability is None:
            return tid
        vid = f"{tid}:verify"
        tasks.append(
            serial_task(
                vid,
                resource=("cpu", dst_node),
                duration=durability.verify_seconds(chunk_size),
                deps=[tid],
                tag="durable:verify",
            )
        )
        return vid

    # Raw chunk flows (intra-rack to delegates / replacement, or the
    # direct RR flows).  Partial flows are added with their decode below.
    raw_flow_ids: dict[int, str] = {}  # chunk -> flow id
    inbound_to_repl: list[str] = []
    inbound_to_delegate: dict[int, list[str]] = {}
    for t in sp.transfers:
        if t.is_partial:
            continue  # handled with its compute task below
        assert t.chunk_index is not None
        deps = read_task(t.chunk_index, t.src_node)
        tid = f"s{s}:xfer:c{t.chunk_index}"
        tag = "xfer:cross" if t.cross_rack else "xfer:intra"
        got = make_flow(
            tid, t.src_node, t.dst_node,
            fabric.path(t.src_node, t.dst_node), deps, tag,
        )
        raw_flow_ids[t.chunk_index] = got
        if t.dst_node == repl:
            inbound_to_repl.append(got)
        else:
            inbound_to_delegate.setdefault(t.dst_node, []).append(got)

    # Compute tasks.  The GF combine-efficiency width is the stripe's
    # full decode width: CAR's pieces stream with the efficiency of the
    # whole k-input decode they jointly implement.
    decode_width = sum(
        ct.input_chunks for ct in sp.compute if ct.kind in ("partial", "local")
    )
    final_deps: list[str] = list(inbound_to_repl)
    partial_transfers = [t for t in sp.transfers if t.is_partial]
    for ct in sp.compute:
        duration = hardware.profile(ct.node).gf_seconds(
            ct.input_chunks * chunk_size, inputs=decode_width or ct.input_chunks
        )
        if ct.kind == "partial":
            rack = state.topology.rack_of(ct.node)
            # Inputs: the delegate's own chunk reads + intra-rack flows.
            deps: list[str] = list(inbound_to_delegate.get(ct.node, []))
            delivered = {
                t.chunk_index for t in sp.transfers if t.chunk_index is not None
            }
            for chunk in ct.chunks:
                if chunk not in delivered:
                    deps.extend(read_task(chunk, ct.node))
            ctid = f"s{s}:partial:r{rack}"
            tasks.append(
                serial_task(
                    ctid,
                    resource=("cpu", ct.node),
                    duration=duration,
                    deps=deps,
                    tag="compute:partial",
                )
            )
            xfer = _find_partial_transfer(partial_transfers, ct.node)
            ftid = f"s{s}:xfer:partial:r{rack}"
            final_deps.append(
                make_flow(
                    ftid,
                    xfer.src_node,
                    xfer.dst_node,
                    fabric.path(xfer.src_node, xfer.dst_node),
                    [ctid],
                    "xfer:cross" if xfer.cross_rack else "xfer:intra",
                )
            )
        elif ct.kind == "local":
            ltid = f"s{s}:local-fold"
            tasks.append(
                serial_task(
                    ltid,
                    resource=("cpu", ct.node),
                    duration=duration,
                    deps=list(inbound_to_repl),
                    tag="compute:local",
                )
            )
            final_deps.append(ltid)
        elif ct.kind == "final":
            pass  # added last, below, once all deps are known
        else:  # pragma: no cover - planner only emits the three kinds
            raise PlanError(f"unknown compute kind {ct.kind!r}")

    final = next(ct for ct in sp.compute if ct.kind == "final")
    profile = hardware.profile(final.node)
    final_bytes = final.input_chunks * chunk_size
    # In an aggregated plan the final combine only XORs partially decoded
    # buffers; in a direct plan it is a full GF decode of k raw chunks.
    final_duration = (
        profile.xor_seconds(final_bytes)
        if plan.aggregated
        else profile.gf_seconds(final_bytes)
    )
    ftid = f"s{s}:final"
    tasks.append(
        serial_task(
            ftid,
            resource=("cpu", final.node),
            duration=final_duration,
            deps=final_deps,
            tag="compute:final",
        )
    )
    last = ftid
    if include_disk:
        last = f"s{s}:write"
        tasks.append(
            serial_task(
                last,
                resource=("disk", repl),
                duration=hardware.profile(repl).disk_write_seconds(chunk_size),
                deps=[ftid],
                tag="disk:write",
            )
        )
    if durability is not None:
        # The commit record — checksummed payload included — seals the
        # stripe on the journal disk once the rebuilt chunk is durable.
        tasks.append(
            serial_task(
                f"s{s}:durable:commit",
                resource=("disk", repl),
                duration=durability.commit_seconds(chunk_size),
                deps=[last],
                tag="durable:journal",
            )
        )
    return tasks


def _find_partial_transfer(transfers, delegate: int):
    for t in transfers:
        if t.src_node == delegate:
            return t
    raise PlanError(f"no partial transfer leaves delegate {delegate}")


class RecoverySimulator:
    """Simulates the wall-clock timing of a recovery plan."""

    def __init__(
        self,
        state: ClusterState,
        hardware: HardwareModel | None = None,
        include_disk: bool = True,
        tracer: Tracer | NullTracer | None = None,
        durability: DurabilityCostModel | None = None,
    ) -> None:
        self.state = state
        self.fabric = FabricModel(state.topology)
        self.hardware = hardware or HardwareModel(state.topology)
        self.include_disk = include_disk
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.durability = durability

    def simulate(
        self,
        plan: RecoveryPlan,
        chunk_size: int,
        timeline: "FaultTimeline | None" = None,
    ) -> RecoveryTiming:
        """Run the fluid simulation and summarise its timing.

        Args:
            timeline: optional fault perturbations from a robust run
                (see :attr:`repro.faults.robust.RobustExecutionResult.timeline`);
                injected stalls and retransmissions then count toward
                ``total_time`` and are broken out as ``fault_time``.
        """
        tasks = build_tasks(
            self.state, plan, self.fabric, self.hardware, chunk_size,
            include_disk=self.include_disk, timeline=timeline,
            durability=self.durability,
        )
        num_retries = sum(1 for t in tasks if t.tag == "xfer:retry")
        sim = FluidNetworkSimulator(self.fabric)
        result = sim.run(tasks)
        if self.tracer.enabled:
            self._emit_stripe_spans(tasks, result)
        timing = self._summarise(result, plan, num_retries)
        reg = _metrics.CURRENT
        if reg is not None:
            reg.counter("sim.runs").inc()
            reg.counter("sim.stripes").inc(len(plan.stripe_plans))
            reg.counter("sim.retries").inc(num_retries)
            reg.gauge("sim.makespan_seconds").set(result.makespan)
            reg.histogram("sim.time_per_chunk_seconds").observe(
                timing.time_per_chunk
            )
        return timing

    #: Task-tag prefix -> sim-time family reported per stripe.  Order
    #: matters: the first matching prefix wins (``xfer:retry`` is fault
    #: time, not transfer time; the final combine is decode, the partial
    #: decodes and local folds are aggregation).
    _TAG_FAMILIES: tuple[tuple[str, str], ...] = (
        ("disk", "read"),
        ("xfer:retry", "fault"),
        ("fault", "fault"),
        ("xfer", "transfer"),
        ("compute:final", "decode"),
        ("compute", "aggregate"),
        ("durable", "durable"),
    )

    def _emit_stripe_spans(
        self, tasks: Sequence[SimTask], result: SimResult
    ) -> None:
        """One ``sim.stripe`` span per stripe, in simulated seconds.

        The span interval is the stripe's first task start to its last
        task finish; attributes break its busy time into the read /
        transfer / aggregate / decode / fault families Figure 10 uses.
        """
        per_stripe: dict[int, dict] = {}
        for task in tasks:
            tid = task.task_id
            if not tid.startswith("s") or ":" not in tid:
                continue  # pragma: no cover - all builder ids match
            head = tid.split(":", 1)[0]
            try:
                stripe = int(head[1:])
            except ValueError:  # pragma: no cover - defensive
                continue
            start = result.start_times.get(tid)
            end = result.finish_times.get(tid)
            if start is None or end is None:
                continue  # pragma: no cover - every task completes
            acc = per_stripe.setdefault(
                stripe,
                {
                    "start": start, "end": end, "tasks": 0,
                    "read_s": 0.0, "transfer_s": 0.0, "aggregate_s": 0.0,
                    "decode_s": 0.0, "fault_s": 0.0, "durable_s": 0.0,
                },
            )
            acc["start"] = min(acc["start"], start)
            acc["end"] = max(acc["end"], end)
            acc["tasks"] += 1
            tag = task.tag or ""
            for prefix, family in self._TAG_FAMILIES:
                if tag.startswith(prefix):
                    acc[f"{family}_s"] += end - start
                    break
        for stripe in sorted(per_stripe):
            acc = per_stripe[stripe]
            self.tracer.emit_span(
                "sim.stripe",
                acc["start"],
                acc["end"],
                stripe_id=stripe,
                tasks=acc["tasks"],
                read_s=acc["read_s"],
                transfer_s=acc["transfer_s"],
                aggregate_s=acc["aggregate_s"],
                decode_s=acc["decode_s"],
                fault_s=acc["fault_s"],
                durable_s=acc["durable_s"],
            )

    def _summarise(
        self, result: SimResult, plan: RecoveryPlan, num_retries: int = 0
    ) -> RecoveryTiming:
        transmission = 0.0
        for link_id, nbytes in result.link_bytes.items():
            transmission = max(
                transmission, nbytes / self.fabric.link(link_id).capacity
            )
        return RecoveryTiming(
            total_time=result.makespan,
            computation_time=result.tagged_time("compute:"),
            transmission_time=transmission,
            disk_time=result.tagged_time("disk:"),
            num_chunks=len(plan.stripe_plans),
            fault_time=(
                result.tagged_time("fault:") + result.tagged_time("xfer:retry")
            ),
            num_retries=num_retries,
            durability_time=result.tagged_time("durable:"),
        )
