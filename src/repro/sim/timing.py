"""Per-stripe serialized timing model (the paper's measurement method).

The testbed in the paper measures *per lost chunk* recovery time:
stripes are repaired and timed individually, then averaged.  This
module models exactly that pipeline for one stripe at a time —
staged, with intra-stage parallelism but no inter-stripe overlap:

aggregated (CAR) pipeline per stripe::

    stage A  intra-rack gathers (all racks in parallel; each delegate's
             downlink serialises its inbound chunks) and the failed
             rack's survivors flowing to the replacement node
    stage B  partial decodes at the delegates (parallel) and the local
             fold at the replacement node
    stage C  one partially decoded chunk per accessed intact rack
             crossing the core into the replacement node's downlink
             (rack uplinks carry one chunk each; the shared downlink
             serialises)
    stage D  final XOR combine at the replacement node

direct (RR) pipeline per stripe::

    stage A  k chunks converge on the replacement node's downlink,
             constrained also by each source rack's shared uplink
    stage B  full GF decode at the replacement node

``transmission = A + C`` and ``computation = B + D``, which is the
breakdown Figure 10(a) reports; Figure 10(b)'s normalised computation
time compares the computation components.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.state import ClusterState
from repro.errors import PlanError
from repro.network.links import gbps_to_bytes_per_s
from repro.recovery.planner import RecoveryPlan, StripePlan
from repro.sim.hardware import HardwareModel

__all__ = ["StripeTiming", "SerialRecoveryTiming", "StripeSerialTimingModel"]


@dataclass(frozen=True)
class StripeTiming:
    """Transmission/computation split for one stripe's repair."""

    stripe_id: int
    transmission: float
    computation: float

    @property
    def total(self) -> float:
        """End-to-end per-stripe repair time."""
        return self.transmission + self.computation


@dataclass(frozen=True)
class SerialRecoveryTiming:
    """Aggregate of per-stripe timings for a whole recovery.

    Attributes:
        stripes: the individual per-stripe results.
    """

    stripes: tuple[StripeTiming, ...]

    @property
    def transmission_time(self) -> float:
        """Summed transmission seconds over all stripes."""
        return sum(s.transmission for s in self.stripes)

    @property
    def computation_time(self) -> float:
        """Summed computation seconds over all stripes."""
        return sum(s.computation for s in self.stripes)

    @property
    def total_time(self) -> float:
        """Summed per-stripe repair time."""
        return self.transmission_time + self.computation_time

    @property
    def time_per_chunk(self) -> float:
        """Average repair time per lost chunk (0 with no stripes)."""
        if not self.stripes:
            return 0.0
        return self.total_time / len(self.stripes)

    @property
    def computation_ratio(self) -> float:
        """Computation share of the total (Figure 10(a)).

        Guarded against zero-duration runs: an all-zero timing (e.g. a
        degenerate zero-byte chunk size) reports ratio 0 instead of
        dividing by zero.
        """
        if not self.total_time:
            return 0.0
        return self.computation_time / self.total_time

    @property
    def transmission_ratio(self) -> float:
        """Transmission share of the total (Figure 10(a))."""
        return 1.0 - self.computation_ratio


class StripeSerialTimingModel:
    """Analytic staged timing of a recovery plan, one stripe at a time."""

    def __init__(self, state: ClusterState, hardware: HardwareModel | None = None) -> None:
        self.state = state
        self.hardware = hardware or HardwareModel(state.topology)
        bw = state.topology.bandwidth
        self._nic = gbps_to_bytes_per_s(bw.node_nic_gbps)
        self._uplink = gbps_to_bytes_per_s(bw.rack_uplink_gbps)

    def evaluate(self, plan: RecoveryPlan, chunk_size: int) -> SerialRecoveryTiming:
        """Time every stripe of ``plan`` under the serialized pipeline."""
        stripes = tuple(
            self._stripe(plan, sp, chunk_size) for sp in plan.stripe_plans
        )
        return SerialRecoveryTiming(stripes=stripes)

    # -- internals -----------------------------------------------------

    def _stripe(
        self, plan: RecoveryPlan, sp: StripePlan, chunk_size: int
    ) -> StripeTiming:
        if plan.aggregated:
            return self._stripe_aggregated(plan, sp, chunk_size)
        return self._stripe_direct(plan, sp, chunk_size)

    def _stripe_aggregated(
        self, plan: RecoveryPlan, sp: StripePlan, chunk_size: int
    ) -> StripeTiming:
        repl = plan.replacement_node
        # Stage A: intra-rack gathers, parallel across racks; each
        # receiver's downlink serialises its inbound raw chunks.
        inbound: dict[int, int] = {}
        for t in sp.transfers:
            if not t.is_partial:
                inbound[t.dst_node] = inbound.get(t.dst_node, 0) + 1
        stage_a = max(
            (n * chunk_size / self._nic for n in inbound.values()), default=0.0
        )
        # Stage B: partial decodes and the local fold.  The paper's
        # computation time counts the *duration of the decoding
        # operations* — CAR splits the same k-input decode into per-rack
        # pieces without shrinking the total decode work (Section V-D),
        # so the pieces are summed, not overlapped.
        # The efficiency width is the stripe's full decode width (k):
        # CAR splits one k-input decode into per-rack pieces, and each
        # piece streams with the same per-input efficiency the whole
        # decode would have.
        decode_width = sum(
            ct.input_chunks
            for ct in sp.compute
            if ct.kind in ("partial", "local")
        )
        stage_b = 0.0
        for ct in sp.compute:
            if ct.kind in ("partial", "local"):
                stage_b += self.hardware.profile(ct.node).gf_seconds(
                    ct.input_chunks * chunk_size, inputs=decode_width
                )
        # Stage C: one partial per intact rack into the replacement
        # downlink (uplinks carry one chunk each and cannot bottleneck
        # below the shared downlink unless slower).
        partials = sum(1 for t in sp.transfers if t.is_partial)
        stage_c = max(
            partials * chunk_size / self._nic,
            (chunk_size / self._uplink) if partials else 0.0,
        )
        # Stage D: final XOR combine.
        final = self._final_task(sp)
        stage_d = self.hardware.profile(final.node).xor_seconds(
            final.input_chunks * chunk_size
        )
        return StripeTiming(
            stripe_id=sp.stripe_id,
            transmission=stage_a + stage_c,
            computation=stage_b + stage_d,
        )

    def _stripe_direct(
        self, plan: RecoveryPlan, sp: StripePlan, chunk_size: int
    ) -> StripeTiming:
        repl_rack = self.state.topology.rack_of(plan.replacement_node)
        total = len(sp.transfers)
        per_uplink: dict[int, int] = {}
        for t in sp.transfers:
            if t.cross_rack:
                per_uplink[t.src_rack] = per_uplink.get(t.src_rack, 0) + 1
        downlink_time = total * chunk_size / self._nic
        uplink_time = max(
            (n * chunk_size / self._uplink for n in per_uplink.values()),
            default=0.0,
        )
        final = self._final_task(sp)
        compute = self.hardware.profile(final.node).gf_seconds(
            final.input_chunks * chunk_size, inputs=final.input_chunks
        )
        return StripeTiming(
            stripe_id=sp.stripe_id,
            transmission=max(downlink_time, uplink_time),
            computation=compute,
        )

    @staticmethod
    def _final_task(sp: StripePlan):
        for ct in sp.compute:
            if ct.kind == "final":
                return ct
        raise PlanError(f"stripe {sp.stripe_id} has no final compute task")
