"""Command-line interface: regenerate any table or figure of the paper.

Examples::

    repro-car fig7                 # cross-rack traffic (Figure 7)
    repro-car fig8 --runs 10       # load balancing (Figure 8), 10 runs
    repro-car fig9 --runs 3        # recovery time (Figure 9)
    repro-car fig10                # time breakdown (Figure 10)
    repro-car ablation             # traffic decomposition + sweeps
    repro-car all --runs 5         # everything, fast settings

Telemetry::

    repro-car fig7 --runs 2 --telemetry out/   # persist trace + metrics
    repro-car trace out/CFS1/trace.jsonl       # per-stage/per-rack summary
    repro-car metrics out/CFS1/metrics.json    # counters/histograms/caches

Durability::

    repro-car scrub --config CFS2 --corrupt 3     # corrupt, detect, heal
    repro-car durable out/journal.jsonl           # journalled recovery
    repro-car durable out/journal.jsonl --crash-after 9   # ...then crash
    repro-car resume out/journal.jsonl            # resume from the journal
    repro-car durable out/journal.jsonl --stream --window 32  # streaming

Streaming hot path::

    repro-car stream --stripes 5000               # throughput + peak RSS
    repro-car stream --workers 2 --shm            # zero-copy worker fan-out
    repro-car stream --json out/stream.json       # machine-readable artifact
    repro-car stream --telemetry out/ --progress  # trace + live status line

Observatory::

    repro-car report out/trace.jsonl              # per-stage attribution
    repro-car export out/trace.jsonl --out t.json # Perfetto-loadable trace
    repro-car export out/trace.jsonl --folded t.folded  # flamegraph stacks

Service::

    repro-car serve out/                          # live cluster, one failure
    repro-car serve out/ --repair-cap 65536       # cap repair bandwidth
    repro-car serve out/ --crash-after 18         # crash; re-run resumes
    repro-car bench-service out/                  # repair-cap sweep table
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.errors import CoordinatorCrashError

from repro.experiments import (
    ALL_CFS,
    CFS1,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_greedy_vs_optimal,
    run_oversubscription_sweep,
    run_traffic_ablation,
)
from repro.experiments.report import (
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10,
    render_greedy_vs_optimal,
    render_oversubscription,
    render_traffic_ablation,
)

__all__ = ["main", "build_parser", "SUBCOMMANDS"]

#: Every subcommand with its one-line description.  This registry is the
#: single source of truth: it drives the parser's ``choices``, the
#: ``--help`` epilog, and the CLI table in ``docs/API.md``
#: (``tools/gen_api_docs.py``) — so the three can never disagree.
SUBCOMMANDS: dict[str, str] = {
    "fig7": "cross-rack traffic vs chunk size (Figure 7)",
    "fig8": "load balancing: lambda vs greedy iterations (Figure 8)",
    "fig9": "recovery time vs chunk size on the fluid model (Figure 9)",
    "fig10": "recovery time breakdown by stage (Figure 10)",
    "ablation": "traffic decomposition, oversubscription, greedy-vs-optimal",
    "landscape": "repair cost per lost chunk across erasure-code schemes",
    "longrun": "90-day failure-trace replay (repairs, traffic, lambda)",
    "degraded": "degraded-read latency distributions (CAR vs RR)",
    "regen": "regenerating-code sweep (rack-aware MSR, piggybacked RS)",
    "all": "every figure/experiment above at fast settings",
    "trace": "summarise a recorded trace.jsonl (stages, racks, spans)",
    "metrics": "summarise a recorded metrics.json snapshot",
    "report": "per-stage/per-rack bottleneck attribution for a trace",
    "export": "convert a trace to Chrome/Perfetto JSON or flamegraph stacks",
    "scrub": "corrupt chunks, then detect and heal them (integrity pass)",
    "durable": "journalled (optionally streaming) recovery run",
    "resume": "resume a crashed durable recovery from its journal",
    "stream": "streaming recovery throughput + peak-RSS measurement",
    "serve": "boot a live in-process cluster, fail a node, repair it",
    "bench-service": "sweep repair-bandwidth caps on the live service",
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    epilog_lines = ["subcommands:"]
    epilog_lines += [
        f"  {name:<14} {desc}" for name, desc in SUBCOMMANDS.items()
    ]
    parser = argparse.ArgumentParser(
        prog="repro-car",
        description=(
            "Reproduce the evaluation of 'Reconsidering Single Failure "
            "Recovery in Clustered File Systems' (DSN 2016)."
        ),
        epilog="\n".join(epilog_lines),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        choices=list(SUBCOMMANDS),
        metavar="subcommand",
        help="one of the subcommands listed below",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help=(
            "artifact path: a trace.jsonl for 'trace'/'report'/'export', "
            "a metrics.json for 'metrics', the write-ahead journal for "
            "'durable'/'resume', the working directory for "
            "'serve'/'bench-service' (ignored by experiments)"
        ),
    )
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help=(
            "record a span trace and metrics snapshot for experiments "
            "that support it (fig7, regen) into DIR; for 'stream' also "
            "writes a Perfetto-loadable trace.chrome.json, progress "
            "heartbeats, and resource-profile samples"
        ),
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=None,
        help="runs to average (defaults per experiment; the paper uses 50)",
    )
    parser.add_argument(
        "--stripes",
        type=int,
        default=None,
        help="stripes per run (paper: 100)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the base RNG seed"
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        default=False,
        help="append ASCII charts of the series to the tables",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the experiment runs (default: serial; "
            "results are identical for any worker count)"
        ),
    )
    parser.add_argument(
        "--config",
        choices=["CFS1", "CFS2", "CFS3"],
        default="CFS1",
        help="cluster configuration for 'scrub' and 'durable' (default CFS1)",
    )
    parser.add_argument(
        "--strategy",
        choices=["car", "direct", "rr", "rack-msr"],
        default="car",
        help=(
            "recovery strategy: 'durable' accepts car/direct, "
            "'serve'/'bench-service' accept car/rr/rack-msr (default car)"
        ),
    )
    parser.add_argument(
        "--crash-after",
        dest="crash_after",
        type=int,
        metavar="N",
        default=None,
        help=(
            "inject a coordinator crash after N journal records "
            "('durable'/'resume'); the process exits with status 3 and "
            "the journal is the resume point"
        ),
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        metavar="FILE",
        default=None,
        help=(
            "also write the experiment's results as JSON to FILE "
            "(supported by 'regen'; the CI artifact)"
        ),
    )
    parser.add_argument(
        "--corrupt",
        type=int,
        metavar="N",
        default=3,
        help="chunks to silently corrupt before a 'scrub' pass (default 3)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        default=False,
        help=(
            "use the windowed streaming executor for 'durable'/'resume' "
            "(O(window) coordinator memory, batched GF dispatch)"
        ),
    )
    parser.add_argument(
        "--window",
        type=int,
        metavar="N",
        default=64,
        help="stripes in flight at once on the streaming path (default 64)",
    )
    parser.add_argument(
        "--shm",
        action="store_true",
        default=False,
        help=(
            "share chunk data with 'stream' worker processes through "
            "shared memory (zero-copy) instead of pickling"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        default=False,
        help=(
            "print a live status line to stderr during 'stream' and "
            "streaming 'durable'/'resume' runs (stripes/s, windows, "
            "traffic, journal lag, ETA)"
        ),
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help=(
            "output path for 'export' (default: <trace>.chrome.json "
            "next to the input)"
        ),
    )
    parser.add_argument(
        "--folded",
        metavar="FILE",
        default=None,
        help=(
            "also write collapsed-stack flamegraph lines for 'export' "
            "to FILE"
        ),
    )
    parser.add_argument(
        "--clients",
        type=int,
        metavar="N",
        default=3,
        help=(
            "concurrent foreground readers for 'serve'/'bench-service' "
            "(default 3)"
        ),
    )
    parser.add_argument(
        "--repair-cap",
        dest="repair_cap",
        type=int,
        metavar="BYTES_PER_S",
        default=None,
        help=(
            "token-bucket cap on repair bandwidth for 'serve', modelled "
            "bytes/s (default: uncapped — repair still queues on the "
            "shared link)"
        ),
    )
    parser.add_argument(
        "--caps",
        metavar="LIST",
        default=None,
        help=(
            "comma-separated repair caps for 'bench-service', modelled "
            "bytes/s with 'none' for uncapped (default 16384,65536,none)"
        ),
    )
    parser.add_argument(
        "--client-priority",
        dest="client_priority",
        type=float,
        metavar="X",
        default=1.0,
        help=(
            "token multiplier charged to repair bytes while clients are "
            "active ('serve'; >= 1.0, default 1.0 = no preference)"
        ),
    )
    parser.add_argument(
        "--speedup",
        type=float,
        metavar="X",
        default=None,
        help=(
            "modelled seconds per wall second for 'serve'/'bench-service' "
            "(defaults: serve 50, bench-service 10)"
        ),
    )
    return parser


def _kwargs(args: argparse.Namespace, default_runs: int) -> dict:
    kwargs: dict = {"runs": args.runs if args.runs is not None else default_runs}
    if args.stripes is not None:
        kwargs["num_stripes"] = args.stripes
    if args.seed is not None:
        kwargs["base_seed"] = args.seed
    if args.workers is not None:
        kwargs["workers"] = args.workers
    return kwargs


def _maybe_plot(args, results, title, series_of, y_label):
    if not args.plot:
        return ""
    from repro.experiments.plots import series_chart

    charts = [
        series_chart(f"{title} — {res.config.name}", series_of(res), y_label)
        for res in results
    ]
    return "\n\n" + "\n\n".join(charts)


def _run_trace(args: argparse.Namespace) -> str:
    from repro.obs import read_jsonl, render_trace

    return render_trace(read_jsonl(args.path))


def _run_metrics(args: argparse.Namespace) -> str:
    import json

    from repro.obs import render_metrics

    with open(args.path, encoding="utf-8") as fh:
        return render_metrics(json.load(fh))


def _run_report(args: argparse.Namespace) -> str:
    from repro.obs import attribute, read_jsonl, render_attribution

    return render_attribution(attribute(read_jsonl(args.path)))


def _run_export(args: argparse.Namespace) -> str:
    import json
    from pathlib import Path

    from repro.obs import (
        read_jsonl,
        to_chrome_trace,
        validate_chrome_trace,
        write_collapsed_stacks,
    )

    events = read_jsonl(args.path)
    out = (
        Path(args.out)
        if args.out is not None
        else Path(args.path).with_suffix(".chrome.json")
    )
    payload = to_chrome_trace(events)
    count = validate_chrome_trace(payload)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
    )
    lines = [
        f"wrote {count} trace events to {out}"
        " (open in https://ui.perfetto.dev or chrome://tracing)"
    ]
    if args.folded is not None:
        folded = write_collapsed_stacks(events, args.folded)
        lines.append(f"wrote collapsed flamegraph stacks to {folded}")
    return "\n".join(lines)


def _stderr_progress(total_stripes=None):
    """A ProgressReporter rendering a live line on stderr."""
    from repro.obs import ProgressReporter

    return ProgressReporter(
        total_stripes=total_stripes,
        stream=sys.stderr,
        tty=sys.stderr.isatty(),
    )


def _run_fig7(args: argparse.Namespace) -> str:
    kwargs = _kwargs(args, default_runs=50)
    if args.telemetry is not None:
        kwargs["telemetry"] = args.telemetry
    results = run_fig7(**kwargs)
    return render_fig7(results) + _maybe_plot(
        args,
        results,
        "Figure 7: cross-rack traffic (MB) vs chunk size (MB)",
        lambda r: list(r.series.values()),
        "MB",
    )


def _run_fig8(args: argparse.Namespace) -> str:
    results = run_fig8(**_kwargs(args, default_runs=50))
    return render_fig8(results) + _maybe_plot(
        args,
        results,
        "Figure 8: lambda vs iterations",
        lambda r: [r.balanced, r.unbalanced],
        "lambda",
    )


def _run_fig9(args: argparse.Namespace) -> str:
    results = run_fig9(**_kwargs(args, default_runs=3))
    return render_fig9(results) + _maybe_plot(
        args,
        results,
        "Figure 9: recovery time (s/chunk) vs chunk size (MB)",
        lambda r: list(r.series.values()),
        "s",
    )


def _run_fig10(args: argparse.Namespace) -> str:
    return render_fig10(run_fig10(**_kwargs(args, default_runs=10)))


def _run_regen(args: argparse.Namespace) -> str:
    import json
    from pathlib import Path

    from repro.experiments.regen import regen_to_dict, run_regen
    from repro.experiments.report import render_regen

    kwargs = _kwargs(args, default_runs=50)
    if args.telemetry is not None:
        kwargs["telemetry"] = args.telemetry
    results = run_regen(**kwargs)
    out = render_regen(results)
    if args.json_path is not None:
        payload = regen_to_dict(results)
        Path(args.json_path).parent.mkdir(parents=True, exist_ok=True)
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        out += f"\n\nwrote JSON results to {args.json_path}"
    return out + _maybe_plot(
        args,
        results,
        "Regenerating codes: cross-rack traffic (MB) vs chunk size (MB)",
        lambda r: [o.series for o in r.outcomes.values()],
        "MB",
    )


def _run_landscape(args: argparse.Namespace) -> str:
    from repro.analysis.landscape import repair_landscape
    from repro.experiments import CFS2
    from repro.experiments.report import format_table

    runs = args.runs if args.runs is not None else 5
    stripes = args.stripes if args.stripes is not None else 50
    rows = repair_landscape(CFS2, runs=runs, num_stripes=stripes)
    table = [
        [
            r.scheme,
            f"{r.total_chunks:.2f}",
            "-" if r.cross_rack_chunks is None else f"{r.cross_rack_chunks:.2f}",
            f"{r.storage_overhead:.2f}x",
        ]
        for r in rows
    ]
    return (
        "Repair cost per lost chunk (chunk units), CFS2\n"
        + format_table(["scheme", "total", "cross-rack", "storage"], table)
    )


def _run_degraded(args: argparse.Namespace) -> str:
    from repro.experiments import ALL_CFS
    from repro.experiments.degraded import run_degraded_read
    from repro.experiments.report import format_table

    runs = args.runs if args.runs is not None else 5
    stripes = args.stripes if args.stripes is not None else 50
    rows = []
    for cfg in ALL_CFS:
        res = run_degraded_read(
            cfg, runs=runs, num_stripes=stripes, workers=args.workers
        )
        for name in ("CAR", "RR"):
            d = res.distributions[name]
            rows.append(
                [
                    cfg.name,
                    name,
                    f"{d.mean * 1000:.0f}ms",
                    f"{d.p99 * 1000:.0f}ms",
                    f"{d.worst * 1000:.0f}ms",
                ]
            )
    return (
        "Degraded-read latency per lost-chunk request (4MB chunks)\n"
        + format_table(["CFS", "strategy", "mean", "p99", "max"], rows)
    )


def _run_longrun(args: argparse.Namespace) -> str:
    from repro.experiments import CFS2
    from repro.experiments.configs import build_state
    from repro.experiments.report import format_table
    from repro.recovery import CarStrategy, RandomRecoveryStrategy
    from repro.workloads import FailureTraceGenerator, LongRunSimulator

    stripes = args.stripes if args.stripes is not None else 100
    seed = args.seed if args.seed is not None else 21
    trace = FailureTraceGenerator(
        num_nodes=CFS2.num_nodes, mtbf_hours=1500, seed=seed
    ).generate(horizon_hours=24 * 90)
    rows = []
    for name, factory in (
        ("RR", lambda h: RandomRecoveryStrategy(rng=seed)),
        ("CAR", lambda h: CarStrategy()),
        ("CAR-history", lambda h: CarStrategy(baseline_traffic=list(h))),
    ):
        sim = LongRunSimulator(
            lambda: build_state(CFS2, seed=seed, num_stripes=stripes),
            factory,
            chunk_size=4 << 20,
        )
        rep = sim.replay(trace)
        rows.append(
            [
                name,
                rep.failures,
                f"{rep.total_cross_rack_bytes / 2**30:.1f} GiB",
                f"{rep.total_repair_hours * 60:.1f} min",
                f"{rep.mean_lambda:.3f}",
                f"{rep.long_run_lambda():.3f}",
            ]
        )
    return (
        f"90-day failure trace on CFS2 ({len(trace)} failures)\n"
        + format_table(
            ["strategy", "repairs", "cross-rack", "repair time",
             "event lambda", "long-run lambda"],
            rows,
        )
    )


def _run_ablation(args: argparse.Namespace) -> str:
    runs = args.runs if args.runs is not None else 10
    parts = [
        render_traffic_ablation(
            [
                run_traffic_ablation(cfg, runs=runs, workers=args.workers)
                for cfg in ALL_CFS
            ]
        ),
        render_oversubscription(
            CFS1.name, run_oversubscription_sweep(CFS1)
        ),
        render_greedy_vs_optimal(
            [
                run_greedy_vs_optimal(
                    cfg, runs=max(3, runs // 2), workers=args.workers
                )
                for cfg in ALL_CFS
            ]
        ),
    ]
    return "\n\n".join(parts)


def _cfs_config(name: str):
    from repro.experiments import CFS2, CFS3

    return {"CFS1": CFS1, "CFS2": CFS2, "CFS3": CFS3}[name]


def _run_scrub(args: argparse.Namespace) -> str:
    import random

    from repro.cluster.scrub import Scrubber
    from repro.experiments.configs import build_state
    from repro.experiments.report import format_table
    from repro.obs.metrics import MetricsRegistry, telemetry_scope

    config = _cfs_config(args.config)
    stripes = args.stripes if args.stripes is not None else 20
    seed = args.seed if args.seed is not None else 11
    state = build_state(config, seed=seed, with_data=True,
                        num_stripes=stripes)
    rng = random.Random(seed)
    n_corrupt = max(0, min(args.corrupt, stripes))
    targets = [
        (stripe, rng.randrange(state.code.n))
        for stripe in rng.sample(range(stripes), n_corrupt)
    ]
    for i, (stripe, chunk) in enumerate(targets):
        state.data.corrupt(stripe, chunk, seed=seed + i)
    registry = MetricsRegistry()
    with telemetry_scope(registry):
        report = Scrubber(state).scrub()
    rows = [
        [str(f.stripe_id),
         "?" if f.chunk_index is None else str(f.chunk_index),
         "repaired" if f.repaired else "unrepairable"]
        for f in report.findings
    ]
    metrics = registry.snapshot()["metrics"]
    lines = [
        f"Scrub pass over {config.name} "
        f"({stripes} stripes, {n_corrupt} chunks corrupted)",
        f"  checked : {report.stripes_checked} stripes",
        f"  clean   : {report.clean_stripes}",
        f"  corrupt : {report.corrupt_stripes}"
        f" (all repaired: {'yes' if report.all_repaired else 'NO'})",
    ]
    if rows:
        lines.append(format_table(["stripe", "chunk", "outcome"], rows))
    lines.append(
        "metrics: " + ", ".join(
            f"{name}={int(total)}"
            for name, total in sorted(
                (name, sum(s["value"] for s in metric["series"]))
                for name, metric in metrics.items()
                if name.startswith("scrub.")
            )
        )
    )
    return "\n".join(lines)


def _render_durable(out, verb: str) -> str:
    replayed = ", ".join(map(str, out.replayed)) or "-"
    executed = ", ".join(map(str, out.executed)) or "-"
    total = len(out.replayed) + len(out.executed)
    return "\n".join([
        f"Durable recovery ({verb}) — journal {out.journal_path}",
        f"  stripes : {total} total"
        f" = {len(out.replayed)} replayed + {len(out.executed)} executed",
        f"  replayed: {replayed}",
        f"  executed: {executed}",
        f"  verified: {'yes' if out.verified else 'NO'}",
        f"  traffic : cross-rack {out.cross_rack_bytes} B"
        f" / intra-rack {out.intra_rack_bytes} B (logical session)",
        f"  live    : cross-rack {out.live_cross_rack_bytes} B"
        f" / intra-rack {out.live_intra_rack_bytes} B"
        f" (this incarnation)",
    ])


def _run_durable(args: argparse.Namespace) -> str:
    from repro.experiments.runner import run_durable_recovery

    out = run_durable_recovery(
        _cfs_config(args.config),
        args.path,
        strategy=args.strategy,
        seed=args.seed if args.seed is not None else 0,
        num_stripes=args.stripes if args.stripes is not None else 12,
        crash_after_records=args.crash_after,
        streaming=args.stream,
        window=args.window,
        progress=_stderr_progress() if args.progress and args.stream else None,
    )
    return _render_durable(out, "fresh run")


def _run_resume(args: argparse.Namespace) -> str:
    from repro.experiments.runner import resume_durable_recovery

    out = resume_durable_recovery(
        args.path, crash_after_records=args.crash_after,
        streaming=args.stream, window=args.window,
        progress=_stderr_progress() if args.progress and args.stream else None,
    )
    return _render_durable(out, "resumed")


def _run_stream(args: argparse.Namespace) -> str:
    import json
    import resource
    import time
    from contextlib import nullcontext
    from pathlib import Path

    from repro.cluster.failure import FailureInjector
    from repro.experiments.configs import build_state
    from repro.recovery import (
        CarStrategy,
        PlanExecutor,
        RandomRecoveryStrategy,
        plan_recovery_streaming,
    )

    config = _cfs_config(args.config)
    stripes = args.stripes if args.stripes is not None else 1000
    seed = args.seed if args.seed is not None else 0
    # Small chunks: this command measures the coordination overhead the
    # streaming path removes, not GF throughput.
    state = build_state(config, seed=seed, with_data=True,
                        chunk_size=256, num_stripes=stripes)
    event = FailureInjector(rng=seed).fail_random_node(state)
    strategy = (
        CarStrategy() if args.strategy == "car"
        else RandomRecoveryStrategy(rng=seed)
    )
    solution = strategy.solve(state)
    affected = len(solution.solutions)
    plan = plan_recovery_streaming(state, event, solution)
    # Opt-in observability: --telemetry records trace + metrics +
    # resource profile (and disables the telemetry-free fast path —
    # that is the point); --progress renders a live stderr line either
    # way.  Neither flag set keeps the hot path untouched.
    telemetry_dir = Path(args.telemetry) if args.telemetry else None
    tracer = registry = profiler = progress = None
    if telemetry_dir is not None:
        from repro.obs import MetricsRegistry, ResourceSampler, Tracer

        telemetry_dir.mkdir(parents=True, exist_ok=True)
        tracer = Tracer()
        registry = MetricsRegistry()
        profiler = ResourceSampler()
    if telemetry_dir is not None or args.progress:
        from repro.obs import ProgressReporter, jsonl_sink

        progress = ProgressReporter(
            total_stripes=affected,
            sink=(
                jsonl_sink(telemetry_dir / "progress.jsonl")
                if telemetry_dir is not None
                else None
            ),
            stream=sys.stderr if args.progress else None,
            tty=args.progress and sys.stderr.isatty(),
        )
    executor = PlanExecutor(state, tracer, profiler=profiler)
    ok_count = 0

    def sink(stripe_id, rebuilt, ok):
        nonlocal ok_count
        ok_count += ok

    if registry is not None:
        from repro.obs import telemetry_scope

        scope = telemetry_scope(registry)
    else:
        scope = nullcontext()
    t0 = time.perf_counter()
    with scope:
        result = executor.execute_streaming(
            plan,
            window=args.window,
            workers=args.workers,
            shm=args.shm if args.shm else None,
            sink=sink,
            progress=progress,
        )
    elapsed = time.perf_counter() - t0
    peak_rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    throughput = affected / elapsed if elapsed > 0 else float("inf")
    payload = {
        "config": config.name,
        "strategy": args.strategy,
        "num_stripes": stripes,
        "affected_stripes": affected,
        "window": args.window,
        "workers": args.workers,
        "shm": bool(args.shm),
        "elapsed_seconds": elapsed,
        "stripes_per_second": throughput,
        "peak_rss_kib": peak_rss_kib,
        "cross_rack_bytes": result.cross_rack_bytes,
        "intra_rack_bytes": result.intra_rack_bytes,
        "verified": ok_count == affected,
    }
    lines = [
        f"Streaming recovery — {config.name}, {args.strategy},"
        f" {affected}/{stripes} stripes affected",
        f"  window   : {args.window}"
        + (f", workers {args.workers}" if args.workers else ""),
        f"  elapsed  : {elapsed:.3f} s ({throughput:,.0f} stripes/s)",
        f"  peak RSS : {peak_rss_kib} KiB",
        f"  traffic  : cross-rack {result.cross_rack_bytes} B"
        f" / intra-rack {result.intra_rack_bytes} B",
        f"  verified : {'yes' if payload['verified'] else 'NO'}",
    ]
    if telemetry_dir is not None:
        from repro.obs import write_chrome_trace

        tracer.write_jsonl(telemetry_dir / "trace.jsonl")
        profiler.merge_into(registry)
        profiler.write_jsonl(telemetry_dir / "profile.jsonl")
        registry.write_json(telemetry_dir / "metrics.json")
        write_chrome_trace(tracer.events, telemetry_dir / "trace.chrome.json")
        lines.append(
            f"  wrote trace.jsonl, trace.chrome.json, metrics.json, "
            f"profile.jsonl, progress.jsonl to {telemetry_dir}/"
        )
    if args.json_path is not None:
        Path(args.json_path).parent.mkdir(parents=True, exist_ok=True)
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        lines.append(f"  wrote JSON results to {args.json_path}")
    return "\n".join(lines)


def _render_serve_summary(summary: dict) -> str:
    cap = summary.get("repair_cap_bytes_per_s")
    if cap is None:
        cap = (summary.get("admission") or {}).get("repair_cap_bytes_per_s")
    lines = [
        f"Live service run — {summary['config']}, {summary['strategy']},"
        f" node {summary['failed_node']} failed"
        f" ({summary['stripes']} stripes affected)",
        f"  repair   : {summary['replayed']} replayed"
        f" + {summary['executed']} executed,"
        f" verified {'yes' if summary['verified'] else 'NO'}",
        f"  recovery : {summary['recovery_throughput_bytes_per_s']:,.0f}"
        f" B/s over {summary['recovery_model_s']:.3f} model-s"
        + (f" (cap {cap:,.0f} B/s)" if cap else " (uncapped)"),
        f"  clients  : {summary['reads']} reads"
        f" ({summary['contended_reads']} during repair,"
        f" {summary['degraded_reads']} degraded)",
        f"  latency  : p50 {summary['client_p50_model_s'] * 1e3:.1f} ms,"
        f" p99 {summary['client_p99_model_s'] * 1e3:.1f} ms (modelled)",
    ]
    if "trace_path" in summary:
        lines.append(f"  trace    : {summary['trace_path']}")
    return "\n".join(lines)


def _run_serve(args: argparse.Namespace) -> str:
    from pathlib import Path

    from repro.service.bench import run_service

    if args.strategy == "direct":
        raise SystemExit("'serve' strategies are car, rr, or rack-msr")
    workdir = Path(args.path)
    summary = run_service(
        workdir=workdir,
        trace_path=workdir / "trace.jsonl",
        config=args.config,
        seed=args.seed if args.seed is not None else 7,
        num_stripes=args.stripes if args.stripes is not None else 10,
        strategy=args.strategy,
        clients=args.clients,
        speedup=args.speedup if args.speedup is not None else 50.0,
        repair_cap=args.repair_cap,
        client_priority=args.client_priority,
        repair_window=min(args.window, 8),
        crash_after_records=args.crash_after,
    )
    out = _render_serve_summary(summary)
    if args.json_path is not None:
        import json

        Path(args.json_path).parent.mkdir(parents=True, exist_ok=True)
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        out += f"\n  wrote JSON results to {args.json_path}"
    return out


def _parse_caps(raw: str):
    caps = []
    for part in raw.split(","):
        part = part.strip().lower()
        caps.append(None if part in ("none", "uncapped") else int(part))
    return tuple(caps)


def _run_bench_service(args: argparse.Namespace) -> str:
    from pathlib import Path

    from repro.service.bench import (
        DEFAULT_CAPS,
        render_service_table,
        run_bench_service,
    )

    if args.strategy == "direct":
        raise SystemExit(
            "'bench-service' strategies are car, rr, or rack-msr"
        )
    caps = _parse_caps(args.caps) if args.caps else DEFAULT_CAPS
    kwargs = dict(
        workdir=Path(args.path),
        config=args.config,
        seed=args.seed if args.seed is not None else 7,
        clients=args.clients,
        strategy=args.strategy,
    )
    if args.stripes is not None:
        kwargs["num_stripes"] = args.stripes
    if args.speedup is not None:
        kwargs["speedup"] = args.speedup
    if args.client_priority != 1.0:
        kwargs["client_priority"] = args.client_priority
    rows = run_bench_service(caps, **kwargs)
    out = (
        "Service sweep: repair cap vs recovery throughput vs "
        "foreground latency (modelled)\n" + render_service_table(rows)
    )
    if args.json_path is not None:
        import json

        Path(args.json_path).parent.mkdir(parents=True, exist_ok=True)
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(rows, fh, indent=2, sort_keys=True)
            fh.write("\n")
        out += f"\nwrote JSON results to {args.json_path}"
    return out


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if (args.experiment in ("trace", "metrics", "durable", "resume",
                            "report", "export", "serve", "bench-service")
            and args.path is None):
        parser.error(f"'{args.experiment}' requires a file path argument")
    handlers = {
        "fig7": _run_fig7,
        "fig8": _run_fig8,
        "fig9": _run_fig9,
        "fig10": _run_fig10,
        "ablation": _run_ablation,
        "landscape": _run_landscape,
        "longrun": _run_longrun,
        "degraded": _run_degraded,
        "regen": _run_regen,
        "trace": _run_trace,
        "metrics": _run_metrics,
        "report": _run_report,
        "export": _run_export,
        "scrub": _run_scrub,
        "durable": _run_durable,
        "resume": _run_resume,
        "stream": _run_stream,
        "serve": _run_serve,
        "bench-service": _run_bench_service,
    }
    try:
        if args.experiment == "all":
            outputs = [
                handlers[name](args)
                for name in (
                    "fig7", "fig8", "fig9", "fig10", "ablation", "landscape",
                    "longrun", "degraded", "regen",
                )
            ]
            print("\n\n".join(outputs))
        else:
            print(handlers[args.experiment](args))
    except CoordinatorCrashError as crash:
        print(
            f"coordinator crashed after {crash.records_written} journal "
            f"records: {crash}"
        )
        if args.experiment == "serve":
            print(f"resume with: repro-car serve {args.path}")
        else:
            print(f"resume with: repro-car resume {args.path}")
        return 3
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
