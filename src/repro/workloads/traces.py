"""Synthetic failure traces for long-horizon studies.

Ford et al. (OSDI'10) — the availability study the paper cites for
"single failures account for over 90 % of failure events" — motivates
evaluating repair policies over *sequences* of failures, not one-shot
events.  This module generates per-node failure traces with either
exponential (memoryless) or Weibull (wear-out / infant-mortality)
inter-arrival times, deterministic by seed.

Times are in hours; node MTBF defaults to ~4380 h (half a year), which
at 20 nodes yields a failure roughly every 9 days — enough events in a
simulated quarter to exercise load balancing repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["FailureEventSpec", "FailureTrace", "FailureTraceGenerator"]


@dataclass(frozen=True)
class FailureEventSpec:
    """One node failure in a trace.

    Attributes:
        time_hours: absolute event time from the trace start.
        node_id: the node that fails.
    """

    time_hours: float
    node_id: int


@dataclass(frozen=True)
class FailureTrace:
    """An ordered sequence of single-node failures.

    The single-failure model of the paper is preserved by construction:
    events are strictly ordered and each is fully repaired before the
    next is injected by the long-run simulator.
    """

    events: tuple[FailureEventSpec, ...]
    horizon_hours: float

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def failures_per_node(self, num_nodes: int) -> list[int]:
        """Histogram of failures per node id."""
        counts = [0] * num_nodes
        for e in self.events:
            counts[e.node_id] += 1
        return counts

    def mean_interarrival_hours(self) -> float:
        """Mean time between consecutive failures."""
        if len(self.events) < 2:
            return self.horizon_hours
        times = [e.time_hours for e in self.events]
        gaps = [b - a for a, b in zip(times, times[1:])]
        return sum(gaps) / len(gaps)


class FailureTraceGenerator:
    """Generates :class:`FailureTrace` objects for a node population.

    Args:
        num_nodes: cluster size.
        mtbf_hours: per-node mean time between failures.
        distribution: ``"exponential"`` (memoryless) or ``"weibull"``.
        weibull_shape: Weibull shape parameter; < 1 models infant
            mortality, > 1 models wear-out. Ignored for exponential.
        seed: RNG seed (traces are fully deterministic given the seed).
    """

    def __init__(
        self,
        num_nodes: int,
        mtbf_hours: float = 4380.0,
        distribution: str = "exponential",
        weibull_shape: float = 1.3,
        seed: int = 0,
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        if mtbf_hours <= 0:
            raise ConfigurationError("mtbf_hours must be positive")
        if distribution not in ("exponential", "weibull"):
            raise ConfigurationError(
                f"unknown distribution {distribution!r}; "
                "choose 'exponential' or 'weibull'"
            )
        if weibull_shape <= 0:
            raise ConfigurationError("weibull_shape must be positive")
        self.num_nodes = num_nodes
        self.mtbf_hours = mtbf_hours
        self.distribution = distribution
        self.weibull_shape = weibull_shape
        self.seed = seed

    def _interarrivals(self, rng: np.ndarray, count: int) -> np.ndarray:
        if self.distribution == "exponential":
            return rng.exponential(self.mtbf_hours, count)
        # Scale the Weibull so its mean equals the MTBF:
        # mean = lambda * Gamma(1 + 1/k)  =>  lambda = mtbf / Gamma(...)
        from math import gamma

        lam = self.mtbf_hours / gamma(1.0 + 1.0 / self.weibull_shape)
        return lam * rng.weibull(self.weibull_shape, count)

    def generate(self, horizon_hours: float) -> FailureTrace:
        """Generate all failures within ``[0, horizon_hours)``.

        Each node runs its own renewal process; the merged event list is
        returned time-ordered.
        """
        if horizon_hours <= 0:
            raise ConfigurationError("horizon_hours must be positive")
        rng = np.random.default_rng(self.seed)
        events: list[FailureEventSpec] = []
        for node in range(self.num_nodes):
            t = 0.0
            # Draw in batches until the horizon is passed.
            while True:
                batch = self._interarrivals(rng, 16)
                done = False
                for gap in batch:
                    t += float(gap)
                    if t >= horizon_hours:
                        done = True
                        break
                    events.append(
                        FailureEventSpec(time_hours=t, node_id=node)
                    )
                if done:
                    break
        events.sort(key=lambda e: (e.time_hours, e.node_id))
        return FailureTrace(events=tuple(events), horizon_hours=horizon_hours)
