"""Workload substrate: failure traces and long-horizon replay."""

from repro.workloads.longrun import EventOutcome, LongRunReport, LongRunSimulator
from repro.workloads.traces import (
    FailureEventSpec,
    FailureTrace,
    FailureTraceGenerator,
)

__all__ = [
    "FailureEventSpec",
    "FailureTrace",
    "FailureTraceGenerator",
    "EventOutcome",
    "LongRunReport",
    "LongRunSimulator",
]
