"""Long-horizon maintenance simulation: a quarter of failures, repaired.

Replays a :class:`~repro.workloads.traces.FailureTrace` against a
cluster: for every event, fail the node, solve the recovery with the
strategy under test, account the cross-rack traffic and the repair
wall-clock (serialized timing model), heal, continue.  The result is
the *operational* view of the paper's claim — cumulative cross-rack
terabytes and repair hours saved over months, and how evenly the repair
burden spread across racks (a long-run λ).

Stripes lost to an event are re-placed at heal time exactly where they
were (the paper's same-node replacement), so consecutive events see a
consistent layout.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.cluster.state import ClusterState
from repro.errors import ConfigurationError
from repro.recovery.baselines import RecoveryStrategy
from repro.recovery.planner import plan_recovery
from repro.sim.hardware import HardwareModel
from repro.sim.timing import StripeSerialTimingModel
from repro.workloads.traces import FailureTrace

__all__ = ["EventOutcome", "LongRunReport", "LongRunSimulator"]


@dataclass(frozen=True)
class EventOutcome:
    """Accounting for one repaired failure.

    Attributes:
        time_hours: when the failure occurred.
        failed_node: which node failed.
        stripes_repaired: lost chunks rebuilt.
        cross_rack_chunks: cross-rack repair traffic (chunk units).
        repair_seconds: serialized repair wall-clock for the event.
        lambda_rate: the event's load balancing rate.
    """

    time_hours: float
    failed_node: int
    stripes_repaired: int
    cross_rack_chunks: int
    repair_seconds: float
    lambda_rate: float


@dataclass
class LongRunReport:
    """Aggregate of a whole trace replay.

    Attributes:
        strategy: name of the strategy under test.
        chunk_size: bytes per chunk (for byte totals).
        outcomes: per-event accounting, time-ordered.
        per_rack_chunks: cross-rack chunks sourced per rack, cumulative.
    """

    strategy: str
    chunk_size: int
    outcomes: list[EventOutcome] = field(default_factory=list)
    per_rack_chunks: list[int] = field(default_factory=list)

    @property
    def failures(self) -> int:
        """Number of failures repaired."""
        return len(self.outcomes)

    @property
    def total_cross_rack_bytes(self) -> int:
        """Cumulative cross-rack repair traffic in bytes."""
        return sum(o.cross_rack_chunks for o in self.outcomes) * self.chunk_size

    @property
    def total_repair_hours(self) -> float:
        """Cumulative repair wall-clock, hours."""
        return sum(o.repair_seconds for o in self.outcomes) / 3600.0

    @property
    def mean_lambda(self) -> float:
        """Mean per-event load balancing rate."""
        if not self.outcomes:
            return 1.0
        return sum(o.lambda_rate for o in self.outcomes) / len(self.outcomes)

    def long_run_lambda(self) -> float:
        """λ of the *cumulative* per-rack cross-rack traffic.

        Long-horizon balance: even if single events are skewed, the sum
        over many events (with failures landing in different racks)
        should even out; this measures how well.
        """
        loaded = [c for c in self.per_rack_chunks if c > 0]
        if not loaded:
            return 1.0
        return max(loaded) / (sum(loaded) / len(loaded))


class LongRunSimulator:
    """Replays a failure trace against one cluster + strategy pair.

    Args:
        state_factory: builds a fresh :class:`ClusterState` (no failure)
            — called once; the same cluster is reused across events.
        strategy_factory: builds the strategy for each event.  It is
            called with the *cumulative per-rack cross-rack traffic* so
            far (a tuple of chunk counts), enabling history-aware
            variants — e.g. ``lambda hist: CarStrategy(
            baseline_traffic=hist)``; plain strategies just ignore it.
        chunk_size: chunk bytes for traffic/time accounting.
    """

    def __init__(
        self,
        state_factory: Callable[[], ClusterState],
        strategy_factory: Callable[[tuple[int, ...]], RecoveryStrategy],
        chunk_size: int = 4 << 20,
    ) -> None:
        if chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive")
        self.state_factory = state_factory
        self.strategy_factory = strategy_factory
        self.chunk_size = chunk_size

    def replay(self, trace: FailureTrace) -> LongRunReport:
        """Replay every event of ``trace`` and return the report."""
        state = self.state_factory()
        hardware = HardwareModel(state.topology)
        timing_model = StripeSerialTimingModel(state, hardware=hardware)
        strategy = self.strategy_factory(
            tuple([0] * state.topology.num_racks)
        )
        report = LongRunReport(
            strategy=strategy.name,
            chunk_size=self.chunk_size,
            per_rack_chunks=[0] * state.topology.num_racks,
        )
        for spec in trace:
            if not state.placement.chunks_on_node(spec.node_id):
                continue  # empty node: failure is a no-op for repair
            event = state.fail_node(spec.node_id)
            strategy = self.strategy_factory(tuple(report.per_rack_chunks))
            solution = strategy.solve(state)
            plan = plan_recovery(state, event, solution)
            timing = timing_model.evaluate(plan, self.chunk_size)
            for rack, chunks in enumerate(solution.traffic_by_rack()):
                report.per_rack_chunks[rack] += chunks
            report.outcomes.append(
                EventOutcome(
                    time_hours=spec.time_hours,
                    failed_node=spec.node_id,
                    stripes_repaired=len(solution),
                    cross_rack_chunks=solution.total_cross_rack_traffic(),
                    repair_seconds=timing.total_time,
                    lambda_rate=solution.load_balancing_rate(),
                )
            )
            state.heal()  # same-node replacement restores the layout
        return report
