"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Sub-hierarchies
mirror the package layout: field arithmetic, erasure coding, cluster
modelling, recovery planning, and network simulation each get their own
branch.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FieldError",
    "DivisionByZeroError",
    "CodingError",
    "SingularMatrixError",
    "InvalidCodeParametersError",
    "InsufficientChunksError",
    "ClusterError",
    "PlacementError",
    "UnknownNodeError",
    "UnknownChunkError",
    "NoFailureError",
    "RecoveryError",
    "NoValidSolutionError",
    "StrategyError",
    "annotate_strategy",
    "PlanError",
    "IntegrityError",
    "JournalError",
    "CoordinatorCrashError",
    "ServiceError",
    "ProtocolError",
    "RepairCancelled",
    "SimulationError",
    "FlowError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A user-supplied configuration value is invalid or inconsistent."""


# ---------------------------------------------------------------------------
# Galois-field arithmetic
# ---------------------------------------------------------------------------


class FieldError(ReproError):
    """Base class for finite-field arithmetic errors."""


class DivisionByZeroError(FieldError, ZeroDivisionError):
    """Division (or inversion) of the zero element was requested."""


# ---------------------------------------------------------------------------
# Erasure coding
# ---------------------------------------------------------------------------


class CodingError(ReproError):
    """Base class for erasure-coding errors."""


class SingularMatrixError(CodingError):
    """A matrix that must be invertible turned out to be singular."""


class InvalidCodeParametersError(CodingError, ValueError):
    """The requested (k, m, w) combination cannot form a valid code."""


class InsufficientChunksError(CodingError):
    """Fewer than ``k`` chunks were supplied where ``k`` are required."""


# ---------------------------------------------------------------------------
# Cluster modelling
# ---------------------------------------------------------------------------


class ClusterError(ReproError):
    """Base class for cluster / topology errors."""


class PlacementError(ClusterError):
    """Chunk placement could not satisfy its constraints."""


class UnknownNodeError(ClusterError, KeyError):
    """A node id does not exist in the topology."""


class UnknownChunkError(ClusterError, KeyError):
    """A chunk id does not exist in the cluster state."""


class NoFailureError(ClusterError):
    """A recovery was requested but no node is marked failed."""


# ---------------------------------------------------------------------------
# Recovery planning
# ---------------------------------------------------------------------------


class RecoveryError(ReproError):
    """Base class for recovery planning/execution errors."""


class NoValidSolutionError(RecoveryError):
    """No valid per-stripe recovery solution exists (data loss)."""


class StrategyError(RecoveryError):
    """A recovery strategy cannot run on the given cluster state.

    Raised when a strategy's structural requirements are violated (for
    example a rack-aware regenerating strategy on a placement that is
    not rack-aligned).  Always carries the strategy name so failures in
    multi-strategy experiments are diagnosable.

    Attributes:
        strategy: name of the strategy that failed.
    """

    def __init__(self, message: str, strategy: str = "") -> None:
        super().__init__(
            f"[{strategy}] {message}" if strategy else message
        )
        self.strategy = strategy

    def __reduce__(self):
        # Re-running __init__ with self.args would re-prefix the name;
        # rebuild from the formatted message with no strategy and
        # restore the attribute via state instead.
        return (_rebuild_strategy_error, (self.args[0], self.strategy))


def _rebuild_strategy_error(message: str, strategy: str) -> StrategyError:
    err = StrategyError(message)
    err.strategy = strategy
    return err


def annotate_strategy(exc: BaseException, strategy: str) -> None:
    """Attach a strategy name to an in-flight exception.

    Every :meth:`RecoveryStrategy.solve` routes escaping
    :class:`ReproError`\\ s through here, so a failure inside a
    multi-strategy experiment always names the strategy that raised it
    (as an ``strategy`` attribute and an exception note) without
    changing the exception's type or message.
    """
    if not getattr(exc, "strategy", ""):
        exc.strategy = strategy  # type: ignore[attr-defined]
        exc.add_note(f"strategy: {strategy}")


class PlanError(RecoveryError):
    """A recovery plan is malformed or cannot be executed."""


class IntegrityError(RecoveryError):
    """An in-flight buffer failed checksum verification on receipt."""


class JournalError(RecoveryError):
    """A recovery journal is missing, malformed, or inconsistent."""


class CoordinatorCrashError(RecoveryError):
    """The recovery coordinator died mid-session (injected).

    Unlike helper/delegate crashes — which the robust executor absorbs
    by re-planning — a coordinator crash kills the whole session: it
    escapes :meth:`~repro.faults.robust.RobustExecutor.run`, leaving
    behind only what the write-ahead journal persisted.  A
    :class:`~repro.durable.session.RecoverySession` resumes from there.

    Attributes:
        event: the fired fault event (``None`` for journal-scheduled
            crash points, which fire between two records rather than at
            a pipeline checkpoint).
        records_written: journal records durably appended before death.
    """

    def __init__(
        self,
        message: str = "coordinator crashed",
        event=None,
        records_written: int = 0,
    ) -> None:
        super().__init__(message)
        self.event = event
        self.records_written = records_written

    def __reduce__(self):
        # Exception.__reduce__ would replay __init__ with self.args only,
        # dropping the event/record context; workers must ship it whole.
        return (
            self.__class__,
            (self.args[0], self.event, self.records_written),
        )


# ---------------------------------------------------------------------------
# Service layer
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for cluster-service (coordinator/chunkserver) errors."""


class ProtocolError(ServiceError):
    """A wire frame is malformed, torn, or exceeds the size limits."""


class RepairCancelled(ServiceError):
    """The background repair was interrupted (e.g. a helper died).

    Raised out of the repair governor between streaming windows; the
    journal on disk stays valid, so the repair service re-plans around
    the dead nodes and resumes from it.
    """

    def __init__(self, message: str, dead_nodes: frozenset[int] = frozenset()):
        super().__init__(message)
        self.dead_nodes = frozenset(dead_nodes)


# ---------------------------------------------------------------------------
# Network simulation
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for network/timing simulation errors."""


class FlowError(SimulationError):
    """A flow references unknown links or has an invalid size."""
