"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Sub-hierarchies
mirror the package layout: field arithmetic, erasure coding, cluster
modelling, recovery planning, and network simulation each get their own
branch.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FieldError",
    "DivisionByZeroError",
    "CodingError",
    "SingularMatrixError",
    "InvalidCodeParametersError",
    "InsufficientChunksError",
    "ClusterError",
    "PlacementError",
    "UnknownNodeError",
    "UnknownChunkError",
    "NoFailureError",
    "RecoveryError",
    "NoValidSolutionError",
    "PlanError",
    "IntegrityError",
    "JournalError",
    "CoordinatorCrashError",
    "SimulationError",
    "FlowError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A user-supplied configuration value is invalid or inconsistent."""


# ---------------------------------------------------------------------------
# Galois-field arithmetic
# ---------------------------------------------------------------------------


class FieldError(ReproError):
    """Base class for finite-field arithmetic errors."""


class DivisionByZeroError(FieldError, ZeroDivisionError):
    """Division (or inversion) of the zero element was requested."""


# ---------------------------------------------------------------------------
# Erasure coding
# ---------------------------------------------------------------------------


class CodingError(ReproError):
    """Base class for erasure-coding errors."""


class SingularMatrixError(CodingError):
    """A matrix that must be invertible turned out to be singular."""


class InvalidCodeParametersError(CodingError, ValueError):
    """The requested (k, m, w) combination cannot form a valid code."""


class InsufficientChunksError(CodingError):
    """Fewer than ``k`` chunks were supplied where ``k`` are required."""


# ---------------------------------------------------------------------------
# Cluster modelling
# ---------------------------------------------------------------------------


class ClusterError(ReproError):
    """Base class for cluster / topology errors."""


class PlacementError(ClusterError):
    """Chunk placement could not satisfy its constraints."""


class UnknownNodeError(ClusterError, KeyError):
    """A node id does not exist in the topology."""


class UnknownChunkError(ClusterError, KeyError):
    """A chunk id does not exist in the cluster state."""


class NoFailureError(ClusterError):
    """A recovery was requested but no node is marked failed."""


# ---------------------------------------------------------------------------
# Recovery planning
# ---------------------------------------------------------------------------


class RecoveryError(ReproError):
    """Base class for recovery planning/execution errors."""


class NoValidSolutionError(RecoveryError):
    """No valid per-stripe recovery solution exists (data loss)."""


class PlanError(RecoveryError):
    """A recovery plan is malformed or cannot be executed."""


class IntegrityError(RecoveryError):
    """An in-flight buffer failed checksum verification on receipt."""


class JournalError(RecoveryError):
    """A recovery journal is missing, malformed, or inconsistent."""


class CoordinatorCrashError(RecoveryError):
    """The recovery coordinator died mid-session (injected).

    Unlike helper/delegate crashes — which the robust executor absorbs
    by re-planning — a coordinator crash kills the whole session: it
    escapes :meth:`~repro.faults.robust.RobustExecutor.run`, leaving
    behind only what the write-ahead journal persisted.  A
    :class:`~repro.durable.session.RecoverySession` resumes from there.

    Attributes:
        event: the fired fault event (``None`` for journal-scheduled
            crash points, which fire between two records rather than at
            a pipeline checkpoint).
        records_written: journal records durably appended before death.
    """

    def __init__(
        self,
        message: str = "coordinator crashed",
        event=None,
        records_written: int = 0,
    ) -> None:
        super().__init__(message)
        self.event = event
        self.records_written = records_written

    def __reduce__(self):
        # Exception.__reduce__ would replay __init__ with self.args only,
        # dropping the event/record context; workers must ship it whole.
        return (
            self.__class__,
            (self.args[0], self.event, self.records_written),
        )


# ---------------------------------------------------------------------------
# Network simulation
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for network/timing simulation errors."""


class FlowError(SimulationError):
    """A flow references unknown links or has an invalid size."""
