"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Sub-hierarchies
mirror the package layout: field arithmetic, erasure coding, cluster
modelling, recovery planning, and network simulation each get their own
branch.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FieldError",
    "DivisionByZeroError",
    "CodingError",
    "SingularMatrixError",
    "InvalidCodeParametersError",
    "InsufficientChunksError",
    "ClusterError",
    "PlacementError",
    "UnknownNodeError",
    "UnknownChunkError",
    "NoFailureError",
    "RecoveryError",
    "NoValidSolutionError",
    "PlanError",
    "SimulationError",
    "FlowError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A user-supplied configuration value is invalid or inconsistent."""


# ---------------------------------------------------------------------------
# Galois-field arithmetic
# ---------------------------------------------------------------------------


class FieldError(ReproError):
    """Base class for finite-field arithmetic errors."""


class DivisionByZeroError(FieldError, ZeroDivisionError):
    """Division (or inversion) of the zero element was requested."""


# ---------------------------------------------------------------------------
# Erasure coding
# ---------------------------------------------------------------------------


class CodingError(ReproError):
    """Base class for erasure-coding errors."""


class SingularMatrixError(CodingError):
    """A matrix that must be invertible turned out to be singular."""


class InvalidCodeParametersError(CodingError, ValueError):
    """The requested (k, m, w) combination cannot form a valid code."""


class InsufficientChunksError(CodingError):
    """Fewer than ``k`` chunks were supplied where ``k`` are required."""


# ---------------------------------------------------------------------------
# Cluster modelling
# ---------------------------------------------------------------------------


class ClusterError(ReproError):
    """Base class for cluster / topology errors."""


class PlacementError(ClusterError):
    """Chunk placement could not satisfy its constraints."""


class UnknownNodeError(ClusterError, KeyError):
    """A node id does not exist in the topology."""


class UnknownChunkError(ClusterError, KeyError):
    """A chunk id does not exist in the cluster state."""


class NoFailureError(ClusterError):
    """A recovery was requested but no node is marked failed."""


# ---------------------------------------------------------------------------
# Recovery planning
# ---------------------------------------------------------------------------


class RecoveryError(ReproError):
    """Base class for recovery planning/execution errors."""


class NoValidSolutionError(RecoveryError):
    """No valid per-stripe recovery solution exists (data loss)."""


class PlanError(RecoveryError):
    """A recovery plan is malformed or cannot be executed."""


# ---------------------------------------------------------------------------
# Network simulation
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for network/timing simulation errors."""


class FlowError(SimulationError):
    """A flow references unknown links or has an invalid size."""
