"""Discrete-event fluid simulator with max-min fair bandwidth sharing.

The simulator advances time between *events* (a flow draining, a serial
task finishing, a dependent task becoming ready).  Between events, every
active flow transmits at the rate assigned by **progressive filling**
(water-filling): repeatedly find the most-contended link, freeze all its
unfrozen flows at the fair share, subtract, repeat — the classic
max-min fair allocation, vectorised with a link x flow incidence matrix.

Serial tasks (CPU partial decodes, disk reads) occupy their resource
exclusively and are queued FIFO.

Outputs per task finish times, the makespan, and per-tag busy time so
the experiment layer can split transmission vs computation time
(Figure 10).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import FlowError, SimulationError
from repro.network.flow import ResourceKey, SimTask
from repro.network.links import FabricModel

__all__ = ["SimResult", "FluidNetworkSimulator", "maxmin_rates"]

_EPS = 1e-9


def maxmin_rates(
    incidence: np.ndarray, capacities: np.ndarray
) -> np.ndarray:
    """Max-min fair rates for flows over shared links.

    Args:
        incidence: boolean ``(num_links, num_flows)`` matrix; entry
            ``(l, f)`` is True iff flow ``f`` traverses link ``l``.
        capacities: per-link capacity (bytes/s).

    Returns:
        Per-flow rate vector (bytes/s).
    """
    num_links, num_flows = incidence.shape
    if num_flows == 0:
        return np.zeros(0)
    rates = np.zeros(num_flows)
    unfrozen = np.ones(num_flows, dtype=bool)
    remaining = capacities.astype(np.float64).copy()
    inc = incidence.astype(np.float64)
    for _ in range(num_links + 1):
        counts = inc @ unfrozen
        contended = counts > 0
        if not contended.any():
            break
        share = np.full(num_links, np.inf)
        share[contended] = remaining[contended] / counts[contended]
        bottleneck = int(np.argmin(share))
        r = max(share[bottleneck], 0.0)
        # Freeze every link tied at the bottleneck share in one pass: a
        # tied link's own share is unchanged by removing another tied
        # link's flows (both sides of remaining/count scale by the same
        # fair share), so this matches one-at-a-time freezing.
        tied = contended & (share == share[bottleneck])
        to_freeze = incidence[tied].any(axis=0) & unfrozen
        rates[to_freeze] = r
        # Subtract the newly frozen flows' rate from every link they use.
        remaining -= r * (inc[:, to_freeze].sum(axis=1))
        np.maximum(remaining, 0.0, out=remaining)
        unfrozen &= ~to_freeze
        if not unfrozen.any():
            break
    if unfrozen.any():  # pragma: no cover - defensive
        raise SimulationError("water-filling failed to converge")
    return rates


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Attributes:
        finish_times: task id -> completion time (seconds).
        start_times: task id -> time it began transmitting/executing
            (flows: first admitted; serial tasks: service start) — with
            ``finish_times`` this gives the real sim-time interval of
            every task, which the telemetry layer turns into spans.
        makespan: time the last task finished.
        busy_time_by_tag: tag -> summed service time of serial tasks and
            summed active duration of flows carrying that tag.
        link_bytes: link id -> total bytes carried.
    """

    finish_times: dict[str, float] = field(default_factory=dict)
    start_times: dict[str, float] = field(default_factory=dict)
    makespan: float = 0.0
    busy_time_by_tag: dict[str, float] = field(default_factory=dict)
    link_bytes: dict[int, float] = field(default_factory=dict)

    def finish(self, task_id: str) -> float:
        """Finish time of one task.

        Raises:
            SimulationError: if the task never completed.
        """
        try:
            return self.finish_times[task_id]
        except KeyError:
            raise SimulationError(f"task {task_id!r} did not finish") from None

    def tagged_time(self, prefix: str) -> float:
        """Summed busy time of every tag starting with ``prefix``.

        The reporting convention is hierarchical tags (``compute:partial``,
        ``disk:read``, ``fault:stall``, ``xfer:retry``); this rolls a
        whole family up, e.g. ``tagged_time("fault:")`` is the injected
        stall time and ``tagged_time("xfer:retry")`` the retransmission
        time a fault scenario added.
        """
        return sum(
            v
            for tag, v in self.busy_time_by_tag.items()
            if tag.startswith(prefix)
        )


class FluidNetworkSimulator:
    """Runs a DAG of flow/serial tasks over a :class:`FabricModel`."""

    def __init__(self, fabric: FabricModel) -> None:
        self.fabric = fabric

    def run(self, tasks: Sequence[SimTask]) -> SimResult:
        """Simulate to completion and return the :class:`SimResult`.

        Raises:
            SimulationError: on dependency cycles or unknown deps.
            FlowError: if a flow references an out-of-range link.
        """
        by_id = {t.task_id: t for t in tasks}
        if len(by_id) != len(tasks):
            raise SimulationError("duplicate task ids")
        for t in tasks:
            for d in t.deps:
                if d not in by_id:
                    raise SimulationError(
                        f"task {t.task_id!r} depends on unknown {d!r}"
                    )
            if t.is_flow:
                for link in t.path:
                    if not 0 <= link < self.fabric.num_links:
                        raise FlowError(
                            f"task {t.task_id!r} uses unknown link {link}"
                        )

        dependents: dict[str, list[str]] = {t.task_id: [] for t in tasks}
        missing_deps = {t.task_id: len(t.deps) for t in tasks}
        for t in tasks:
            for d in t.deps:
                dependents[d].append(t.task_id)

        result = SimResult()
        now = 0.0
        # Active flows: id -> remaining bytes.  Serial resources: FIFO.
        active_flows: dict[str, float] = {}
        flow_started_at: dict[str, float] = {}
        resource_queue: dict[ResourceKey, list[str]] = {}
        resource_running: dict[ResourceKey, tuple[str, float]] = {}
        serial_heap: list[tuple[float, int, str, ResourceKey]] = []
        tie = itertools.count()
        completed = 0

        def start_serial(task_id: str) -> None:
            task = by_id[task_id]
            assert task.resource is not None
            result.start_times[task_id] = now
            finish_at = now + task.duration
            resource_running[task.resource] = (task_id, finish_at)
            heapq.heappush(
                serial_heap, (finish_at, next(tie), task_id, task.resource)
            )

        def make_ready(task_id: str) -> None:
            task = by_id[task_id]
            if task.is_flow:
                active_flows[task_id] = task.size_bytes
                flow_started_at[task_id] = now
                result.start_times[task_id] = now
            else:
                res = task.resource
                assert res is not None
                if res in resource_running:
                    resource_queue.setdefault(res, []).append(task_id)
                else:
                    start_serial(task_id)

        for t in tasks:
            if missing_deps[t.task_id] == 0:
                make_ready(t.task_id)

        def complete(task_id: str) -> None:
            nonlocal completed
            result.finish_times[task_id] = now
            completed += 1
            task = by_id[task_id]
            if task.tag:
                if task.is_flow:
                    dur = now - flow_started_at[task_id]
                else:
                    dur = task.duration
                result.busy_time_by_tag[task.tag] = (
                    result.busy_time_by_tag.get(task.tag, 0.0) + dur
                )
            if task.is_flow:
                for link in task.path:
                    result.link_bytes[link] = (
                        result.link_bytes.get(link, 0.0) + task.size_bytes
                    )
            for dep_id in dependents[task_id]:
                missing_deps[dep_id] -= 1
                if missing_deps[dep_id] == 0:
                    make_ready(dep_id)

        max_steps = 10 * len(tasks) + 10
        for _ in range(max_steps):
            if completed == len(tasks):
                break
            rates = self._current_rates(by_id, active_flows)
            # Earliest flow completion under current constant rates.
            flow_eta = np.inf
            for fid, remaining in active_flows.items():
                r = rates[fid]
                if r <= 0:
                    continue
                flow_eta = min(flow_eta, remaining / r)
            serial_eta = np.inf
            while serial_heap and serial_heap[0][2] in result.finish_times:
                heapq.heappop(serial_heap)  # pragma: no cover - defensive
            if serial_heap:
                serial_eta = serial_heap[0][0] - now
            dt = min(flow_eta, serial_eta)
            if not np.isfinite(dt):
                raise SimulationError(
                    "simulation stalled: tasks remain but nothing progresses"
                )
            dt = max(dt, 0.0)
            now += dt
            # Drain flows.
            finished_flows = []
            for fid in list(active_flows):
                active_flows[fid] -= rates[fid] * dt
                if active_flows[fid] <= _EPS * max(1.0, by_id[fid].size_bytes):
                    finished_flows.append(fid)
            for fid in finished_flows:
                del active_flows[fid]
                complete(fid)
            # Finish serial tasks due now.
            while serial_heap and serial_heap[0][0] <= now + _EPS:
                _, _, task_id, res = heapq.heappop(serial_heap)
                if task_id in result.finish_times:
                    continue
                del resource_running[res]
                # Hand the resource to the next queued task *before*
                # signalling completion: complete() may ready a dependent
                # on this same resource, which must queue behind it.
                queue = resource_queue.get(res)
                if queue:
                    start_serial(queue.pop(0))
                complete(task_id)
        else:
            raise SimulationError("simulation exceeded its step budget")

        result.makespan = now
        return result

    def _current_rates(
        self, by_id: dict[str, SimTask], active_flows: dict[str, float]
    ) -> dict[str, float]:
        ids = list(active_flows)
        if not ids:
            return {}
        incidence = np.zeros((self.fabric.num_links, len(ids)), dtype=bool)
        for col, fid in enumerate(ids):
            path = by_id[fid].path
            assert path is not None
            incidence[list(path), col] = True
        rates = maxmin_rates(incidence, self.fabric.capacities)
        return dict(zip(ids, rates))
