"""Task model for the fluid network simulator.

A simulation is a DAG of :class:`SimTask` items of two kinds:

- **flow** — moves bytes along a fixed link path; shares link capacity
  max-min fairly with all concurrently active flows;
- **serial** — occupies one exclusive resource (a node's CPU or disk)
  for a fixed duration; queued FIFO per resource.

Dependencies encode recovery structure, e.g. a rack delegate's partial
decode depends on the intra-rack flows delivering its inputs, and its
cross-rack flow depends on the decode.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import FlowError

__all__ = ["ResourceKey", "SimTask", "flow_task", "serial_task"]

#: Identifies an exclusive serial resource, e.g. ``("cpu", 7)`` or ``("disk", 3)``.
ResourceKey = tuple[str, int]


@dataclass(frozen=True)
class SimTask:
    """One unit of simulated work.

    Exactly one of (``path`` with ``size_bytes``) or (``resource`` with
    ``duration``) must be set.

    Attributes:
        task_id: unique name within the simulation.
        deps: task ids that must finish before this task may start.
        path: link ids for a flow task.
        size_bytes: flow payload.
        resource: exclusive resource for a serial task.
        duration: serial-task service time in seconds.
        tag: free-form label used by reporting (e.g. ``"xfer:cross"``,
            ``"compute:final"``).
    """

    task_id: str
    deps: frozenset[str] = field(default_factory=frozenset)
    path: tuple[int, ...] | None = None
    size_bytes: float = 0.0
    resource: ResourceKey | None = None
    duration: float = 0.0
    tag: str = ""

    def __post_init__(self) -> None:
        is_flow = self.path is not None
        is_serial = self.resource is not None
        if is_flow == is_serial:
            raise FlowError(
                f"task {self.task_id!r} must be exactly one of flow/serial"
            )
        if is_flow and self.size_bytes <= 0:
            raise FlowError(f"flow task {self.task_id!r} needs positive size")
        if is_serial and self.duration < 0:
            raise FlowError(f"serial task {self.task_id!r} has negative duration")

    @property
    def is_flow(self) -> bool:
        """True for network flows, False for serial (CPU/disk) tasks."""
        return self.path is not None


def flow_task(
    task_id: str,
    path: Iterable[int],
    size_bytes: float,
    deps: Iterable[str] = (),
    tag: str = "",
) -> SimTask:
    """Convenience constructor for a flow task."""
    return SimTask(
        task_id=task_id,
        deps=frozenset(deps),
        path=tuple(path),
        size_bytes=float(size_bytes),
        tag=tag,
    )


def serial_task(
    task_id: str,
    resource: ResourceKey,
    duration: float,
    deps: Iterable[str] = (),
    tag: str = "",
) -> SimTask:
    """Convenience constructor for a serial (CPU/disk) task."""
    return SimTask(
        task_id=task_id,
        deps=frozenset(deps),
        resource=resource,
        duration=float(duration),
        tag=tag,
    )
