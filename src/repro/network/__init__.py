"""Network substrate: CFS fabric links and a max-min fair fluid simulator."""

from repro.network.flow import ResourceKey, SimTask, flow_task, serial_task
from repro.network.links import FabricModel, Link, gbps_to_bytes_per_s
from repro.network.simulator import FluidNetworkSimulator, SimResult, maxmin_rates

__all__ = [
    "ResourceKey",
    "SimTask",
    "flow_task",
    "serial_task",
    "FabricModel",
    "Link",
    "gbps_to_bytes_per_s",
    "FluidNetworkSimulator",
    "SimResult",
    "maxmin_rates",
]
