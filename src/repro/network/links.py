"""Directed-link fabric model of the CFS network.

Expands a :class:`~repro.cluster.topology.ClusterTopology` into the
directed links a flow traverses:

- per node: a NIC uplink (node -> ToR) and downlink (ToR -> node);
- per rack: a core uplink (ToR -> core) and downlink (core -> ToR);
- optionally a shared core crossbar link when the core capacity is
  finite.

An intra-rack flow touches two links (src NIC up, dst NIC down); a
cross-rack flow additionally crosses its source rack's uplink, the core,
and the destination rack's downlink.  The rack uplink is where the
paper's over-subscription lives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.errors import FlowError

__all__ = ["Link", "FabricModel", "gbps_to_bytes_per_s"]


def gbps_to_bytes_per_s(gbps: float) -> float:
    """Convert gigabits/s (decimal, as switch vendors quote) to bytes/s."""
    return gbps * 1e9 / 8.0


@dataclass(frozen=True)
class Link:
    """One directed link of the fabric.

    Attributes:
        link_id: dense index (also the row in the capacity vector).
        name: human-readable label for reports.
        capacity: bytes per second.
    """

    link_id: int
    name: str
    capacity: float


class FabricModel:
    """Directed links and path lookup for one cluster topology."""

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        bw = topology.bandwidth
        nic = gbps_to_bytes_per_s(bw.node_nic_gbps)

        links: list[Link] = []

        def add(name: str, capacity: float) -> int:
            links.append(Link(link_id=len(links), name=name, capacity=capacity))
            return links[-1].link_id

        self._node_up: dict[int, int] = {}
        self._node_down: dict[int, int] = {}
        for node in topology.nodes:
            self._node_up[node.node_id] = add(f"{node.name}.up", nic)
            self._node_down[node.node_id] = add(f"{node.name}.down", nic)
        self._rack_up: dict[int, int] = {}
        self._rack_down: dict[int, int] = {}
        for rack in topology.racks:
            uplink = gbps_to_bytes_per_s(bw.uplink_for(rack.rack_id))
            self._rack_up[rack.rack_id] = add(f"{rack.name}.uplink", uplink)
            self._rack_down[rack.rack_id] = add(f"{rack.name}.downlink", uplink)
        self._core: int | None = None
        if bw.core_gbps != float("inf"):
            self._core = add("core", gbps_to_bytes_per_s(bw.core_gbps))

        self.links: tuple[Link, ...] = tuple(links)
        self.capacities: np.ndarray = np.array(
            [l.capacity for l in links], dtype=np.float64
        )

    @property
    def num_links(self) -> int:
        """Total directed links in the fabric."""
        return len(self.links)

    def link(self, link_id: int) -> Link:
        """Link by id."""
        return self.links[link_id]

    def path(self, src_node: int, dst_node: int) -> tuple[int, ...]:
        """Ordered link ids a flow from ``src_node`` to ``dst_node`` uses.

        Raises:
            FlowError: if the endpoints coincide (no network involved).
        """
        if src_node == dst_node:
            raise FlowError(f"flow endpoints coincide (node {src_node})")
        src_rack = self.topology.rack_of(src_node)
        dst_rack = self.topology.rack_of(dst_node)
        if src_rack == dst_rack:
            return (self._node_up[src_node], self._node_down[dst_node])
        hops = [
            self._node_up[src_node],
            self._rack_up[src_rack],
        ]
        if self._core is not None:
            hops.append(self._core)
        hops.extend([self._rack_down[dst_rack], self._node_down[dst_node]])
        return tuple(hops)

    def rack_uplink(self, rack_id: int) -> Link:
        """The (over-subscribed) uplink of one rack."""
        return self.links[self._rack_up[rack_id]]

    def node_downlink(self, node_id: int) -> Link:
        """A node's receive link (the RR bottleneck at the replacement)."""
        return self.links[self._node_down[node_id]]
