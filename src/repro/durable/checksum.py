"""End-to-end chunk integrity: checksums and journal-safe payloads.

Every buffer that crosses the network — raw helper chunks and the rack
delegates' partially decoded aggregates alike — is checksummed at
creation and verified on receipt (CRC32, the same zero-dependency
choice HDFS made for its block checksums).  The executor refuses to
feed an unverified buffer to a decode, which is what turns silent
in-flight corruption into a retryable fault instead of wrong bytes on
the replacement node.

The same checksum covers journal commit payloads: a recovered chunk is
serialised with :func:`encode_payload` into the write-ahead journal and
re-verified by :func:`decode_payload` on resume, so a resumed session
either replays byte-identical chunks or fails loudly.
"""

from __future__ import annotations

import base64
import zlib

import numpy as np

from repro.errors import JournalError

__all__ = ["chunk_checksum", "encode_payload", "decode_payload"]


def chunk_checksum(buf: np.ndarray | bytes | bytearray | memoryview) -> int:
    """CRC32 of a buffer's bytes (dtype-agnostic, deterministic).

    Accepts any contiguous numpy array or bytes-like object; the
    checksum is over the raw byte content, so a buffer survives an
    encode/decode round trip with the same checksum.
    """
    if isinstance(buf, np.ndarray):
        buf = np.ascontiguousarray(buf)
    return zlib.crc32(buf) & 0xFFFFFFFF


def encode_payload(buf: np.ndarray) -> dict:
    """Serialise a chunk buffer for a journal commit record.

    Returns:
        A JSON-ready dict carrying the base64 payload, its dtype, and
        the CRC32 the decoder verifies.
    """
    data = np.ascontiguousarray(buf)
    return {
        "payload": base64.b64encode(data.tobytes()).decode("ascii"),
        "dtype": str(data.dtype),
        "checksum": chunk_checksum(data),
    }


def decode_payload(record: dict) -> np.ndarray:
    """Rebuild a chunk buffer from a journal commit record, verified.

    Raises:
        JournalError: if the record is malformed or the payload's bytes
            no longer match the recorded checksum (journal corruption).
    """
    try:
        raw = base64.b64decode(record["payload"], validate=True)
        dtype = np.dtype(record["dtype"])
        expected = record["checksum"]
    except (KeyError, ValueError, TypeError) as exc:
        raise JournalError(f"malformed commit payload: {exc}") from exc
    if chunk_checksum(raw) != expected:
        raise JournalError(
            f"commit payload checksum mismatch: stored {expected}, "
            f"computed {chunk_checksum(raw)}"
        )
    return np.frombuffer(raw, dtype=dtype).copy()
