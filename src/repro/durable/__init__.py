"""Durability layer: write-ahead journal, integrity, crash-resume.

Public surface:

- :mod:`repro.durable.checksum` — CRC32 chunk checksums and the
  journal's verified payload encoding.
- :mod:`repro.durable.journal` — :class:`RecoveryJournal` (the
  write-ahead log), :func:`read_journal`, :class:`JournalReplay`, and
  :func:`validate_journal_records`.
- :mod:`repro.durable.session` — :class:`RecoverySession`, the driver
  that runs a journalled recovery and resumes it after a coordinator
  crash.

``session`` is imported lazily: it pulls in the executor stack, which
itself imports :mod:`repro.durable.checksum`, and an eager import here
would close that cycle.
"""

from __future__ import annotations

from repro.durable.checksum import chunk_checksum, decode_payload, encode_payload
from repro.durable.journal import (
    RECORD_TYPES,
    JournalReplay,
    RecoveryJournal,
    read_journal,
    validate_journal_records,
)

__all__ = [
    "chunk_checksum",
    "encode_payload",
    "decode_payload",
    "RecoveryJournal",
    "JournalReplay",
    "read_journal",
    "validate_journal_records",
    "RECORD_TYPES",
    "RecoverySession",
    "DurableRecoveryResult",
]


def __getattr__(name: str):
    if name in ("RecoverySession", "DurableRecoveryResult"):
        from repro.durable import session

        return getattr(session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
