"""Crash-resumable recovery sessions driven by the write-ahead journal.

A :class:`RecoverySession` binds one failed cluster, one recovery
strategy, and one journal path.  :meth:`RecoverySession.run` executes
the whole recovery under a :class:`~repro.faults.robust.RobustExecutor`
with journalling on; if the coordinator dies —
:class:`~repro.errors.CoordinatorCrashError`, whether injected between
journal records or fired at a pipeline checkpoint — the journal is all
that survives.  :meth:`RecoverySession.resume` then replays it: every
committed stripe's rebuilt bytes come straight out of its commit record
(checksum-verified, zero re-shipped traffic), and only the pending
stripes execute.  Resume is itself crash-resumable, so a driver loops
``resume()`` until it returns.

The idempotence contract the property suite asserts: however many
crashes interrupt a session, the union of replayed and re-executed
stripes is byte-identical to an uninterrupted run, and the cross-rack
traffic actually transferred exceeds the uninterrupted run's only by
the stripes in flight when each crash hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cluster.state import ClusterState, FailureEvent
from repro.durable.journal import JournalReplay, RecoveryJournal
from repro.errors import ConfigurationError, JournalError
from repro.faults.backoff import BackoffPolicy
from repro.faults.injector import FaultInjector
from repro.faults.events import FaultLog
from repro.faults.robust import RobustExecutionResult, RobustExecutor
from repro.recovery.planner import plan_recovery
from repro.recovery.solution import MultiStripeSolution

__all__ = ["DurableRecoveryResult", "RecoverySession"]


@dataclass
class DurableRecoveryResult:
    """Outcome of a (possibly resumed) durable recovery session.

    Attributes:
        reconstructed: stripe_id -> rebuilt chunk bytes, covering every
            stripe — replayed from commit records and executed live.
        per_stripe_ok: stripe_id -> byte-exact against ground truth
            (commit records store the verdict of the committing run).
        replayed: stripes restored from the journal by this incarnation.
        executed: stripes this incarnation ran live.
        cross_rack_bytes / intra_rack_bytes: traffic of the *whole
            logical session* — committed stripes charged once, from
            their commit records, plus this incarnation's live traffic.
        live_cross_rack_bytes / live_intra_rack_bytes: what this
            incarnation actually moved (the quantity crash-overhead
            bounds sum over incarnations).
        bytes_computed_by_node: whole-session compute, same convention.
        robust: the live executor's result (``None`` when nothing was
            pending — the journal was already complete).
        journal_path: where the journal lives.
    """

    reconstructed: dict[int, np.ndarray] = field(default_factory=dict)
    per_stripe_ok: dict[int, bool] = field(default_factory=dict)
    replayed: tuple[int, ...] = ()
    executed: tuple[int, ...] = ()
    cross_rack_bytes: int = 0
    intra_rack_bytes: int = 0
    live_cross_rack_bytes: int = 0
    live_intra_rack_bytes: int = 0
    bytes_computed_by_node: dict[int, int] = field(default_factory=dict)
    robust: RobustExecutionResult | None = None
    journal_path: Path | None = None

    @property
    def verified(self) -> bool:
        """True iff every stripe of the session reconstructed exactly."""
        return bool(self.per_stripe_ok) and all(self.per_stripe_ok.values())


class RecoverySession:
    """One durable recovery: run it, crash it, resume it.

    Args:
        state: the failed cluster (with a DataStore).
        event: the failure being repaired.
        strategy: any recovery strategy (must be deterministic — resume
            re-solves and trusts it produces the same per-stripe
            solutions).
        journal_path: where the write-ahead journal lives.
        injector / backoff / max_replans / rebalance / tracer: passed to
            the underlying :class:`RobustExecutor`.
        crash_after_records: inject a coordinator crash after the n-th
            journal record of the next incarnation (run *or* resume).
        session_meta: extra keys merged into the journal's session
            header (e.g. config name and seed, so a later process can
            rebuild the identical state from the journal alone).
        streaming: execute through the windowed streaming path
            (:meth:`~repro.recovery.executor.PlanExecutor.execute_streaming`)
            instead of the eager one.  Journal semantics are preserved —
            intents precede commits stripe-by-stripe, so crash/resume
            behaves identically — but helper-fault injection is a
            per-stripe retry protocol the batched decode cannot host, so
            ``streaming=True`` with an ``injector`` is refused.
        window: stripes in flight at once on the streaming path.
        progress: optional
            :class:`~repro.obs.progress.ProgressReporter` for streaming
            sessions — heartbeats carry journal lag (intents without
            commits), the crash-exposure window a durable run cares
            about.  Ignored on the eager path.
        profiler: optional
            :class:`~repro.obs.profile.ResourceSampler` bracketing each
            incarnation's live execution.
    """

    def __init__(
        self,
        state: ClusterState,
        event: FailureEvent,
        strategy,
        journal_path: str | Path,
        *,
        injector: FaultInjector | None = None,
        backoff: BackoffPolicy | None = None,
        max_replans: int = 2,
        rebalance: bool = True,
        tracer=None,
        crash_after_records: int | None = None,
        session_meta: dict | None = None,
        streaming: bool = False,
        window: int = 64,
        progress=None,
        profiler=None,
    ) -> None:
        self.state = state
        self.event = event
        self.strategy = strategy
        self.journal_path = Path(journal_path)
        self.injector = injector
        self.backoff = backoff
        self.max_replans = max_replans
        self.rebalance = rebalance
        self.tracer = tracer
        self.crash_after_records = crash_after_records
        self.session_meta = dict(session_meta or {})
        self.streaming = streaming
        self.window = window
        self.progress = progress
        self.profiler = profiler
        if streaming and injector is not None:
            raise ConfigurationError(
                "streaming sessions cannot inject helper faults; use the "
                "eager path (streaming=False) for fault-injection runs"
            )

    # -- internals -------------------------------------------------------

    def _executor(self, journal: RecoveryJournal) -> RobustExecutor:
        return RobustExecutor(
            self.state,
            injector=self.injector,
            backoff=self.backoff,
            max_replans=self.max_replans,
            rebalance=self.rebalance,
            tracer=self.tracer,
            journal=journal,
            profiler=self.profiler,
        )

    def _solve(self) -> MultiStripeSolution:
        return self.strategy.solve(self.state)

    @staticmethod
    def _restrict(
        solution: MultiStripeSolution, stripes
    ) -> MultiStripeSolution:
        keep = set(stripes)
        return MultiStripeSolution(
            [s for s in solution.solutions if s.stripe_id in keep],
            num_racks=solution.num_racks,
            aggregated=solution.aggregated,
        )

    def _execute(
        self, journal: RecoveryJournal, solution: MultiStripeSolution
    ) -> RobustExecutionResult:
        try:
            if self.streaming:
                return self._execute_streaming(journal, solution)
            plan = plan_recovery(self.state, self.event, solution)
            return self._executor(journal).run(self.event, solution, plan)
        finally:
            # On a crash the journal must still be a readable artifact.
            journal.close()

    def _execute_streaming(
        self, journal: RecoveryJournal, solution: MultiStripeSolution
    ) -> RobustExecutionResult:
        """Windowed execution with the same journal protocol.

        The executor (integrity verification on, journal attached) ships
        each stripe through the full checkpoint/commit sequence, so the
        journal is record-for-record compatible with an eager session's
        — resume cannot tell which path wrote it.
        """
        plan = plan_recovery(self.state, self.event, solution)
        result = self._executor(journal).execute_streaming(
            plan, solution, window=self.window, progress=self.progress
        )
        # Fault-free by construction (no injector): wrap in the shape
        # _package consumes, with an empty fault record.
        return RobustExecutionResult(
            result=result,
            log=FaultLog(),
            dead_nodes=frozenset(),
            replans=0,
            degraded_to_direct=False,
            rounds=1,
            wasted_cross_rack_bytes=0,
            wasted_intra_rack_bytes=0,
            backoff_seconds=0.0,
            stall_seconds=0.0,
            final_solution=solution,
            final_plan=plan,
        )

    # -- public API ------------------------------------------------------

    def run(self) -> DurableRecoveryResult:
        """Execute the session from scratch, journalling as it goes.

        Raises:
            CoordinatorCrashError: the injected coordinator death; the
                journal on disk is the resume point.
        """
        solution = self._solve()
        stripes = sorted(s.stripe_id for s in solution.solutions)
        journal = RecoveryJournal(
            self.journal_path, crash_after_records=self.crash_after_records
        )
        journal.begin_session(
            {
                "stripes": stripes,
                "strategy": type(self.strategy).__name__,
                "aggregated": solution.aggregated,
                "chunk_size": self.state.data.chunk_size,
                "failed_node": self.event.failed_node,
                "replacement_node": self.event.replacement_node,
                **self.session_meta,
            }
        )
        robust = self._execute(journal, solution)
        journal.end_session(committed=len(robust.result.per_stripe_ok))
        return self._package(
            robust, replayed=(), executed=tuple(stripes)
        )

    def resume(self) -> DurableRecoveryResult:
        """Continue a crashed session from its journal.

        Committed stripes are replayed from their commit records —
        verified bytes, no re-execution, no re-shipped traffic; pending
        stripes run live.  Safe to call repeatedly (each crash during a
        resume leaves a longer journal behind).

        Raises:
            JournalError: if the journal is complete (nothing pending)
                and did not verify, or is structurally invalid.
            CoordinatorCrashError: a crash injected into this resume.
        """
        replay = JournalReplay.load(self.journal_path)
        committed = replay.committed
        pending = replay.pending
        if replay.complete:
            return self._package_replayed(replay)
        journal = RecoveryJournal(
            self.journal_path,
            append=True,
            crash_after_records=self.crash_after_records,
        )
        journal.resume_marker(
            replayed=sorted(committed), pending=sorted(pending)
        )
        robust = None
        if pending:
            solution = self._restrict(self._solve(), pending)
            if {s.stripe_id for s in solution.solutions} != set(pending):
                raise JournalError(
                    "strategy did not re-produce solutions for the "
                    f"pending stripes {sorted(pending)}"
                )
            robust = self._execute(journal, solution)
        journal.end_session(
            committed=len(committed)
            + (len(robust.result.per_stripe_ok) if robust else 0)
        )
        return self._package(
            robust,
            replayed=tuple(sorted(committed)),
            executed=tuple(sorted(pending)),
            replay=replay,
        )

    # -- result assembly -------------------------------------------------

    def _package_replayed(self, replay: JournalReplay) -> DurableRecoveryResult:
        out = DurableRecoveryResult(journal_path=self.journal_path)
        self._fold_commits(out, replay, replay.committed)
        out.replayed = tuple(sorted(replay.committed))
        return out

    def _package(
        self,
        robust: RobustExecutionResult | None,
        *,
        replayed: tuple[int, ...],
        executed: tuple[int, ...],
        replay: JournalReplay | None = None,
    ) -> DurableRecoveryResult:
        out = DurableRecoveryResult(
            journal_path=self.journal_path,
            replayed=replayed,
            executed=executed,
            robust=robust,
        )
        if replay is not None:
            self._fold_commits(
                out, replay, {s: replay.committed[s] for s in replayed}
            )
        if robust is not None:
            res = robust.result
            out.reconstructed.update(res.reconstructed)
            out.per_stripe_ok.update(res.per_stripe_ok)
            out.cross_rack_bytes += res.cross_rack_bytes
            out.intra_rack_bytes += res.intra_rack_bytes
            out.live_cross_rack_bytes = (
                res.cross_rack_bytes + robust.wasted_cross_rack_bytes
            )
            out.live_intra_rack_bytes = (
                res.intra_rack_bytes + robust.wasted_intra_rack_bytes
            )
            for node, nbytes in res.bytes_computed_by_node.items():
                out.bytes_computed_by_node[node] = (
                    out.bytes_computed_by_node.get(node, 0) + nbytes
                )
        return out

    def _fold_commits(
        self,
        out: DurableRecoveryResult,
        replay: JournalReplay,
        commits: dict[int, dict],
    ) -> None:
        for stripe_id, record in sorted(commits.items()):
            out.reconstructed[stripe_id] = replay.committed_chunk(stripe_id)
            out.per_stripe_ok[stripe_id] = bool(record["ok"])
            out.cross_rack_bytes += record["cross_rack_bytes"]
            out.intra_rack_bytes += record["intra_rack_bytes"]
            for node, nbytes in record["bytes_computed_by_node"].items():
                node = int(node)
                out.bytes_computed_by_node[node] = (
                    out.bytes_computed_by_node.get(node, 0) + nbytes
                )
