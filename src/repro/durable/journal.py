"""Write-ahead recovery journal: JSONL intent/commit records + replay.

A :class:`RecoveryJournal` is the durability contract of a recovery
session.  The executor appends, in order:

- one ``session`` header (how to rebuild the identical cluster state);
- per stripe, an ``intent`` record *before* any work, ``stage`` records
  as the pipeline progresses (chunk shipped, aggregate shipped, chunk
  decoded), and a ``commit`` record *after* the rebuilt chunk is
  durable — carrying the chunk's bytes, CRC32, and the traffic/compute
  the stripe actually consumed;
- a ``resume`` marker each time a later incarnation reopens the
  journal, and one ``end`` record when every stripe committed.

Every record gets a strictly increasing ``seq`` and is flushed on
append, so a coordinator crash loses at most the record being written.
:func:`read_journal` tolerates exactly that: a torn final line is
dropped, anything else malformed is a :class:`JournalError`.

:class:`JournalReplay` is the read side — which stripes committed (and
their verified bytes), which are still pending, and how much cross-rack
traffic the dead incarnation paid for stripes it never committed.

Crash injection: constructing the journal with ``crash_after_records=n``
raises :class:`~repro.errors.CoordinatorCrashError` immediately after
the ``n``-th record this incarnation appends — the crash-at-every-point
harness sweeps ``n`` over every record boundary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.durable.checksum import decode_payload, encode_payload
from repro.errors import CoordinatorCrashError, JournalError
from repro.obs import metrics as _metrics

__all__ = [
    "RecoveryJournal",
    "JournalReplay",
    "read_journal",
    "validate_journal_records",
    "RECORD_TYPES",
]

#: Every record type a well-formed journal may contain.
RECORD_TYPES = frozenset(
    {"session", "intent", "stage", "commit", "resume", "end"}
)


class RecoveryJournal:
    """Append-only JSONL journal for one (possibly resumed) recovery.

    Args:
        path: journal file.  Created (truncated) unless ``append``.
        append: reopen an existing journal, continuing its ``seq``
            numbering — the resume path.
        crash_after_records: simulate a coordinator crash by raising
            :class:`CoordinatorCrashError` right after this incarnation
            appends its ``n``-th record (the record *is* durable; the
            crash lands on the boundary before the next one).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        append: bool = False,
        crash_after_records: int | None = None,
    ) -> None:
        if crash_after_records is not None and crash_after_records < 1:
            raise JournalError("crash_after_records must be >= 1 (or None)")
        self.path = Path(path)
        self.crash_after = crash_after_records
        self._append_mode = append
        self._fh = None
        self._seq = 0
        self._appended = 0  # records appended by this incarnation
        self._created = False  # truncate only on the very first open

    # -- lifecycle -------------------------------------------------------

    def _open(self) -> None:
        if self._fh is not None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._append_mode and not self._created:
            records = read_journal(self.path)
            if not records:
                raise JournalError(
                    f"cannot resume: {self.path} has no readable records"
                )
            self._seq = records[-1]["seq"]
        mode = "a" if (self._append_mode or self._created) else "w"
        self._created = True
        self._fh = self.path.open(mode, encoding="utf-8")

    def close(self) -> None:
        """Flush and release the file handle (appends reopen lazily)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RecoveryJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def records_written(self) -> int:
        """Records appended by this incarnation."""
        return self._appended

    def _append(self, record: dict) -> None:
        self._open()
        self._seq += 1
        self._appended += 1
        record = {"seq": self._seq, **record}
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        reg = _metrics.CURRENT
        if reg is not None:
            reg.counter("journal.records").inc(rec=record["rec"])
        if self.crash_after is not None and self._appended >= self.crash_after:
            self.close()
            raise CoordinatorCrashError(
                f"injected coordinator crash after journal record "
                f"{self._seq}",
                records_written=self._seq,
            )

    # -- record writers --------------------------------------------------

    def begin_session(self, meta: dict) -> None:
        """Write the session header (must be the journal's first record)."""
        if self._seq or self._append_mode:
            raise JournalError("session header must be the first record")
        self._append({"rec": "session", **meta})

    def stripe_intent(
        self, stripe_id: int, *, aggregated: bool, lost_chunk: int
    ) -> None:
        """Declare a stripe's repair is starting (plan chosen)."""
        self._append(
            {
                "rec": "intent",
                "stripe_id": stripe_id,
                "aggregated": aggregated,
                "lost_chunk": lost_chunk,
            }
        )

    def stage(
        self,
        stripe_id: int,
        stage: str,
        *,
        node: int,
        rack: int,
        chunk: int | None = None,
        is_partial: bool = False,
    ) -> None:
        """Record one pipeline-stage checkpoint reached."""
        self._append(
            {
                "rec": "stage",
                "stripe_id": stripe_id,
                "stage": stage,
                "node": node,
                "rack": rack,
                "chunk": chunk,
                "is_partial": is_partial,
            }
        )

    def stripe_commit(
        self,
        stripe_id: int,
        chunk: np.ndarray,
        *,
        lost_chunk: int,
        ok: bool,
        cross_rack_bytes: int,
        intra_rack_bytes: int,
        bytes_computed_by_node: dict[int, int],
    ) -> None:
        """Commit one stripe: its rebuilt bytes and resource accounting."""
        self._append(
            {
                "rec": "commit",
                "stripe_id": stripe_id,
                "lost_chunk": lost_chunk,
                "ok": ok,
                "cross_rack_bytes": cross_rack_bytes,
                "intra_rack_bytes": intra_rack_bytes,
                "bytes_computed_by_node": {
                    str(n): b for n, b in sorted(bytes_computed_by_node.items())
                },
                **encode_payload(chunk),
            }
        )

    def resume_marker(
        self, *, replayed: list[int], pending: list[int]
    ) -> None:
        """Record that a new incarnation took over the session."""
        self._append(
            {
                "rec": "resume",
                "replayed": sorted(replayed),
                "pending": sorted(pending),
            }
        )

    def end_session(self, *, committed: int) -> None:
        """Mark the session complete (every stripe committed)."""
        self._append({"rec": "end", "committed": committed})
        self.close()


def read_journal(path: str | Path) -> list[dict]:
    """Load a journal's records, dropping a torn final line.

    A coordinator that dies mid-write leaves at most one partial last
    line; that is recoverable and silently dropped.  A malformed line
    anywhere *else* means the file is not a journal.

    Raises:
        JournalError: on a malformed non-final line.
    """
    path = Path(path)
    if not path.exists():
        raise JournalError(f"no journal at {path}")
    lines = path.read_text(encoding="utf-8").splitlines()
    records: list[dict] = []
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if i == len(lines) - 1:
                break  # torn final line: the crash ate it
            raise JournalError(
                f"{path}: malformed record on line {i + 1}: {exc}"
            ) from exc
    return records


def validate_journal_records(records: list[dict]) -> int:
    """Validate journal structure and integrity; return the record count.

    Checks: non-empty, ``session`` first (exactly once), contiguous
    1-based ``seq``, known record types with their required keys, every
    commit's payload bytes matching its recorded checksum, and intents
    preceding their stripe's commit.

    Raises:
        JournalError: naming the first offending record and why.
    """

    def fail(i: int, message: str) -> None:
        raise JournalError(f"record {i}: {message}")

    if not records:
        raise JournalError("journal is empty")
    required = {
        "session": (),
        "intent": ("stripe_id", "aggregated", "lost_chunk"),
        "stage": ("stripe_id", "stage", "node", "rack"),
        "commit": (
            "stripe_id", "lost_chunk", "ok", "payload", "dtype", "checksum",
            "cross_rack_bytes", "intra_rack_bytes", "bytes_computed_by_node",
        ),
        "resume": ("replayed", "pending"),
        "end": ("committed",),
    }
    intents: set[int] = set()
    committed: set[int] = set()
    for i, record in enumerate(records):
        if not isinstance(record, dict):
            fail(i, f"not an object: {type(record).__name__}")
        if record.get("seq") != i + 1:
            fail(i, f"seq {record.get('seq')!r}, expected {i + 1}")
        rec = record.get("rec")
        if rec not in RECORD_TYPES:
            fail(i, f"unknown record type {rec!r}")
        if (rec == "session") != (i == 0):
            fail(i, "session header must appear exactly once, first")
        for key in required[rec]:
            if key not in record:
                fail(i, f"{rec} record missing key {key!r}")
        if rec == "intent":
            intents.add(record["stripe_id"])
        elif rec == "commit":
            if record["stripe_id"] not in intents:
                fail(i, f"commit for stripe {record['stripe_id']} "
                        "without a prior intent")
            try:
                decode_payload(record)
            except JournalError as exc:
                fail(i, str(exc))
            committed.add(record["stripe_id"])
        elif rec == "end":
            if record["committed"] != len(committed):
                fail(i, f"end claims {record['committed']} commits, "
                        f"journal holds {len(committed)}")
    return len(records)


@dataclass
class JournalReplay:
    """Read-side view of a journal: what committed, what is pending.

    Attributes:
        records: the journal's records, in ``seq`` order.
    """

    records: list[dict] = field(default_factory=list)

    @classmethod
    def load(cls, path: str | Path) -> "JournalReplay":
        """Read and structurally validate a journal file."""
        records = read_journal(path)
        validate_journal_records(records)
        return cls(records=records)

    @property
    def session(self) -> dict:
        """The session header record."""
        if not self.records or self.records[0].get("rec") != "session":
            raise JournalError("journal has no session header")
        return self.records[0]

    @property
    def committed(self) -> dict[int, dict]:
        """stripe_id -> its commit record (a stripe commits once)."""
        return {
            r["stripe_id"]: r for r in self.records if r["rec"] == "commit"
        }

    @property
    def pending(self) -> tuple[int, ...]:
        """Session stripes without a commit, in stripe order."""
        done = set(self.committed)
        return tuple(
            s for s in self.session.get("stripes", ()) if s not in done
        )

    @property
    def complete(self) -> bool:
        """True iff the session ended with every stripe committed."""
        return (
            bool(self.records)
            and self.records[-1].get("rec") == "end"
            and not self.pending
        )

    def committed_chunk(self, stripe_id: int) -> np.ndarray:
        """The committed stripe's rebuilt bytes, checksum-verified.

        Raises:
            JournalError: if the stripe has no commit or its payload
                fails verification.
        """
        record = self.committed.get(stripe_id)
        if record is None:
            raise JournalError(f"stripe {stripe_id} has no commit record")
        return decode_payload(record)

    @property
    def total_cross_transfers(self) -> int:
        """Every cross-rack payload any incarnation shipped.

        Each ``cross_transfer`` stage record marks one chunk-sized
        payload crossing the core — including shipments an aborted
        attempt wasted and a later incarnation repeated.  The resume
        traffic bound (uninterrupted transfers + at most the stripes in
        flight per crash) is asserted against exactly this count.
        """
        return sum(
            1
            for r in self.records
            if r["rec"] == "stage" and r["stage"] == "cross_transfer"
        )

    @property
    def uncommitted_cross_transfers(self) -> int:
        """Cross-rack flows logged for stripes that never committed."""
        done = set(self.committed)
        return sum(
            1
            for r in self.records
            if r["rec"] == "stage"
            and r["stage"] == "cross_transfer"
            and r["stripe_id"] not in done
        )
