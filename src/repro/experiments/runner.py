"""Experiment driver: repeated randomised runs and averaging.

The paper's methodology: random placement of 100 stripes, a random
failed node, recover with each strategy, average over 50 runs.  The
:class:`ExperimentRunner` reproduces that loop; each run derives its own
seed so results are reproducible end to end, and within a run every
strategy sees the *same* placement and failure (paired comparison, as
on the testbed).
"""

from __future__ import annotations

import json
import math
import pickle
import statistics
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.failure import FailureInjector
from repro.cluster.state import ClusterState, FailureEvent
from repro.errors import ConfigurationError
from repro.experiments.configs import CFSConfig, build_state
from repro.obs.metrics import MetricsRegistry, telemetry_scope
from repro.obs.tracer import Tracer
from repro.recovery.baselines import RecoveryStrategy
from repro.recovery.solution import MultiStripeSolution

__all__ = [
    "RunTelemetry", "RunResult", "Series", "ExperimentRunner", "mean_std",
    "run_durable_recovery", "resume_durable_recovery",
]

#: Reusable no-op context for the telemetry-disabled run path.
_NULL_CTX = nullcontext()


@dataclass(frozen=True)
class RunTelemetry:
    """Telemetry captured by one run, serialisable across processes.

    Attributes:
        events: the run's JSONL-ready trace records (spans + events).
        metrics: the run's registry snapshot (no cache section — cache
            stats are process-local and would not aggregate
            deterministically across worker counts).
    """

    events: tuple[dict, ...]
    metrics: dict


@dataclass(frozen=True)
class RunResult:
    """Everything produced by one (placement, failure) run.

    Attributes:
        run_index: which repetition.
        state: the cluster (still failed) the run used.
        event: the injected failure.
        solutions: strategy name -> its solution.
        strategies: strategy name -> the strategy instance (so callers
            can read per-strategy artefacts such as balance traces).
        telemetry: the run's captured trace + metrics when the runner
            was constructed with a ``telemetry`` directory, else None.
    """

    run_index: int
    state: ClusterState
    event: FailureEvent
    solutions: dict[str, MultiStripeSolution]
    strategies: dict[str, RecoveryStrategy]
    telemetry: RunTelemetry | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Series:
    """A labelled sequence of (x, mean, std) points — one figure line."""

    label: str
    xs: tuple[float, ...]
    means: tuple[float, ...]
    stds: tuple[float, ...]

    def point(self, x: float) -> tuple[float, float]:
        """(mean, std) at a given x.

        Raises:
            ConfigurationError: if ``x`` is not one of the series' x
                values (a :class:`ValueError`, for compatibility).
        """
        try:
            idx = self.xs.index(x)
        except ValueError:
            raise ConfigurationError(
                f"series {self.label!r} has no point at x={x} "
                f"(xs={self.xs})"
            ) from None
        return self.means[idx], self.stds[idx]


def mean_std(values: Sequence[float]) -> tuple[float, float]:
    """Mean and (population-0-safe) standard deviation of a sample."""
    if not values:
        raise ConfigurationError("cannot summarise an empty sample")
    mean = statistics.fmean(values)
    std = statistics.stdev(values) if len(values) > 1 else 0.0
    if math.isnan(std):  # pragma: no cover - stdev never returns NaN here
        std = 0.0
    return mean, std


class ExperimentRunner:
    """Repeats the paper's run loop for one CFS configuration.

    Args:
        config: the CFS setting.
        runs: repetitions to average (paper: 50).
        base_seed: root seed; run ``i`` uses ``base_seed + i`` for both
            placement and failure choice.
        num_stripes: stripes per run (paper: 100).
        telemetry: optional directory.  When set, every run records a
            span trace and a fresh per-run metrics registry (shipped
            back from worker processes as plain dicts), and
            :meth:`run_all` persists ``trace.jsonl`` (each record
            annotated with its run index), ``metrics.json`` (the
            per-run registries merged in run order — identical for any
            worker count), and ``profile.jsonl`` (coordinator resource
            samples over the batch) into the directory.
        placement_policy: forwarded to
            :func:`~repro.experiments.configs.build_state` — the regen
            experiment runs its rack-aware MSR arm on the
            ``"rack_aligned"`` layout.
        profile_interval: seconds between resource samples of the
            batch-wide :class:`~repro.obs.profile.ResourceSampler`
            (only active when ``telemetry`` is set).  The sampler runs
            in the coordinator process only and folds into
            ``metrics.json`` as ``profile.*`` gauges *after* workers
            finish, so the snapshot stays worker-count invariant.
    """

    def __init__(
        self,
        config: CFSConfig,
        runs: int = 50,
        base_seed: int = 20160628,
        num_stripes: int | None = None,
        telemetry: str | Path | None = None,
        placement_policy: str = "random",
        profile_interval: float = 0.05,
    ) -> None:
        self.config = config
        self.runs = runs
        self.base_seed = base_seed
        self.num_stripes = num_stripes
        self.telemetry = Path(telemetry) if telemetry is not None else None
        self.placement_policy = placement_policy
        self.profile_interval = profile_interval

    def run_all(
        self,
        strategy_factories: dict[str, Callable[[int], RecoveryStrategy]],
        workers: int | None = None,
    ) -> list[RunResult]:
        """Execute every run with freshly built strategies.

        Args:
            strategy_factories: name -> factory taking the run seed and
                returning a strategy instance (strategies with RNGs must
                be re-seeded per run for reproducibility).
            workers: number of worker processes.  ``None`` or ``1`` runs
                serially in-process; larger values fan the independent
                runs out over a :class:`ProcessPoolExecutor`.  Each run
                is a pure function of ``(config, base_seed + i,
                factories)``, and results are gathered in run order, so
                the output is identical for every worker count.

        Raises:
            ConfigurationError: if ``workers`` is not positive, or the
                factories cannot be pickled for worker processes (use
                the classes in :mod:`repro.experiments.factories`
                instead of lambdas when parallelising).
        """
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        sampler = None
        if self.telemetry is not None:
            from repro.obs.profile import ResourceSampler

            sampler = ResourceSampler(interval=self.profile_interval).start()
        try:
            if workers is None or workers == 1 or self.runs <= 1:
                results = [
                    self.run_one(i, strategy_factories)
                    for i in range(self.runs)
                ]
                return self._persist_telemetry(results, sampler)
            # Probe picklability exactly once and keep the payload: every
            # submit ships the already-serialised bytes instead of
            # re-pickling the factory dict per run.
            try:
                payload = pickle.dumps(strategy_factories)
            except Exception as exc:
                raise ConfigurationError(
                    "strategy factories must be picklable for workers > 1 "
                    "(lambdas are not; use repro.experiments.factories)"
                ) from exc
            with ProcessPoolExecutor(
                max_workers=min(workers, self.runs)
            ) as pool:
                futures = [
                    pool.submit(_run_one_from_payload, self, i, payload)
                    for i in range(self.runs)
                ]
                results = [f.result() for f in futures]
            return self._persist_telemetry(results, sampler)
        finally:
            if sampler is not None:
                sampler.stop()

    def _persist_telemetry(
        self, results: list[RunResult], sampler=None
    ) -> list[RunResult]:
        """Write the aggregate trace + metrics of a telemetry-enabled batch.

        Per-run snapshots merge in run order, so the ``metrics.json``
        aggregate is bit-identical for any worker count; the cache
        section reflects this (parent) process only.  The batch-wide
        resource sampler (coordinator process only) lands as
        ``profile.jsonl`` plus ``profile.*`` gauges in the merged
        snapshot — gauges are last-write-wins on merge, so they too are
        identical for any worker count.
        """
        if self.telemetry is None:
            return results
        self.telemetry.mkdir(parents=True, exist_ok=True)
        merged = MetricsRegistry()
        trace_path = self.telemetry / "trace.jsonl"
        with trace_path.open("w", encoding="utf-8") as fh:
            for r in results:
                if r.telemetry is None:  # pragma: no cover - defensive
                    continue
                merged.merge(r.telemetry.metrics)
                for record in r.telemetry.events:
                    fh.write(
                        json.dumps({**record, "run": r.run_index},
                                   sort_keys=True)
                        + "\n"
                    )
        if sampler is not None:
            sampler.stop()
            sampler.merge_into(merged)
            sampler.write_jsonl(self.telemetry / "profile.jsonl")
        merged.write_json(self.telemetry / "metrics.json")
        return results

    def merged_metrics(self, results: Sequence[RunResult]) -> MetricsRegistry:
        """Fold the per-run snapshots of ``results`` into one registry."""
        merged = MetricsRegistry()
        for r in results:
            if r.telemetry is not None:
                merged.merge(r.telemetry.metrics)
        return merged

    def run_one(
        self,
        run_index: int,
        strategy_factories: dict[str, Callable[[int], RecoveryStrategy]],
    ) -> RunResult:
        """One (placement, failure, solve-with-every-strategy) run.

        With telemetry enabled the run gets its own tracer and a fresh
        :class:`MetricsRegistry` installed as the current registry for
        its duration — runs are then self-contained telemetry units
        that aggregate identically regardless of which process (or how
        many workers) executed them.
        """
        seed = self.base_seed + run_index
        if self.telemetry is None:
            return self._solve_run(run_index, seed, strategy_factories)
        tracer = Tracer()
        registry = MetricsRegistry()
        with telemetry_scope(registry):
            result = self._solve_run(
                run_index, seed, strategy_factories, tracer
            )
        telemetry = RunTelemetry(
            events=tuple(tracer.events),
            metrics=registry.snapshot(include_caches=False),
        )
        return RunResult(
            run_index=result.run_index,
            state=result.state,
            event=result.event,
            solutions=result.solutions,
            strategies=result.strategies,
            telemetry=telemetry,
        )

    def _solve_run(
        self,
        run_index: int,
        seed: int,
        strategy_factories: dict[str, Callable[[int], RecoveryStrategy]],
        tracer: Tracer | None = None,
    ) -> RunResult:
        span = (
            tracer.span(
                "run", run_index=run_index, config=self.config.name, seed=seed
            )
            if tracer is not None
            else _NULL_CTX
        )
        with span:
            state = build_state(
                self.config, seed, num_stripes=self.num_stripes,
                placement_policy=self.placement_policy,
            )
            injector = FailureInjector(rng=seed)
            event = injector.fail_random_node(state)
            solutions: dict[str, MultiStripeSolution] = {}
            strategies: dict[str, RecoveryStrategy] = {}
            for name, factory in strategy_factories.items():
                strategy = factory(seed)
                if tracer is not None:
                    with tracer.span("solve", strategy=name,
                                     run_index=run_index):
                        solutions[name] = strategy.solve(state)
                else:
                    solutions[name] = strategy.solve(state)
                strategies[name] = strategy
        return RunResult(
            run_index=run_index,
            state=state,
            event=event,
            solutions=solutions,
            strategies=strategies,
        )


def _run_one_from_payload(
    runner: ExperimentRunner, run_index: int, payload: bytes
) -> RunResult:
    """Worker entry point: rebuild the factories from the probe payload.

    Module-level so it pickles by reference; the factories cross the
    process boundary as the bytes the picklability probe already
    produced, not as a fresh serialisation per run.
    """
    return runner.run_one(run_index, pickle.loads(payload))


# -- durable (crash-resumable) single runs --------------------------------

def _durable_strategy(name: str, seed: int):
    """Map a CLI/journal strategy label to a strategy instance.

    The label (not the instance) is persisted in the journal header, so
    a resuming process can rebuild the *same deterministic* strategy —
    "direct" seeds its RNG from the run seed, making its solve
    reproducible across incarnations.
    """
    from repro.recovery import CarStrategy, RandomRecoveryStrategy

    if name == "car":
        return CarStrategy()
    if name == "direct":
        return RandomRecoveryStrategy(rng=seed)
    raise ConfigurationError(
        f"unknown durable strategy {name!r} (expected 'car' or 'direct')"
    )


def run_durable_recovery(
    config: CFSConfig,
    journal_path: str | Path,
    *,
    strategy: str = "car",
    seed: int = 0,
    num_stripes: int | None = None,
    chunk_size: int = 4096,
    injector=None,
    backoff=None,
    crash_after_records: int | None = None,
    streaming: bool = False,
    window: int = 64,
    progress=None,
):
    """One journalled recovery run on ``config`` (paper methodology).

    Builds the cluster, fails a random node, and executes the whole
    recovery inside a :class:`~repro.durable.session.RecoverySession`.
    The journal's session header is self-describing — config name, run
    seed, stripe count, chunk size, strategy label, failed node — so
    :func:`resume_durable_recovery` can reconstruct the identical
    cluster from the journal alone, in a fresh process.

    Raises:
        CoordinatorCrashError: when ``crash_after_records`` (or an armed
            COORDINATOR_CRASH fault) kills the run; the journal at
            ``journal_path`` is the resume point.
    """
    from repro.durable.session import RecoverySession

    state = build_state(
        config, seed=seed, with_data=True,
        chunk_size=chunk_size, num_stripes=num_stripes,
    )
    event = FailureInjector(rng=seed).fail_random_node(state)
    session = RecoverySession(
        state, event, _durable_strategy(strategy, seed), journal_path,
        injector=injector, backoff=backoff,
        crash_after_records=crash_after_records,
        streaming=streaming, window=window, progress=progress,
        session_meta={
            "config": config.name,
            "seed": seed,
            "num_stripes": state.placement.num_stripes,
            "strategy_label": strategy,
        },
    )
    return session.run()


def resume_durable_recovery(
    journal_path: str | Path,
    *,
    crash_after_records: int | None = None,
    streaming: bool = False,
    window: int = 64,
    progress=None,
):
    """Resume a crashed durable run from its journal, in any process.

    Rebuilds the cluster (placement, data, failure) purely from the
    journal's session header, then replays committed stripes and
    executes pending ones.  Secondary-fault injection does not survive
    the coordinator: the resumed incarnation runs fault-free unless the
    caller arms ``crash_after_records`` again.

    Raises:
        JournalError: malformed journal, or a header missing the
            self-description written by :func:`run_durable_recovery`.
    """
    from repro.durable.journal import JournalReplay
    from repro.durable.session import RecoverySession
    from repro.errors import JournalError
    from repro.experiments.configs import ALL_CFS

    replay = JournalReplay.load(journal_path)
    header = replay.session
    missing = [
        key for key in ("config", "seed", "num_stripes", "chunk_size",
                        "strategy_label", "failed_node")
        if key not in header
    ]
    if missing:
        raise JournalError(
            f"journal header is not self-describing: missing {missing}"
        )
    configs = {c.name: c for c in ALL_CFS}
    if header["config"] not in configs:
        raise JournalError(f"journal names unknown config {header['config']!r}")
    state = build_state(
        configs[header["config"]], seed=header["seed"], with_data=True,
        chunk_size=header["chunk_size"], num_stripes=header["num_stripes"],
    )
    event = FailureInjector().fail_node(state, header["failed_node"])
    session = RecoverySession(
        state, event,
        _durable_strategy(header["strategy_label"], header["seed"]),
        journal_path,
        crash_after_records=crash_after_records,
        streaming=streaming, window=window, progress=progress,
    )
    return session.resume()
