"""Evaluation reproduction: Tables II/III configs and Figures 7-10."""

from repro.experiments.ablation import (
    GreedyVsOptimalResult,
    OversubscriptionPoint,
    TrafficAblationResult,
    run_greedy_vs_optimal,
    run_oversubscription_sweep,
    run_traffic_ablation,
)
from repro.experiments.configs import (
    ALL_CFS,
    CFS1,
    CFS2,
    CFS3,
    MB,
    PAPER_CHUNK_SIZES,
    CFSConfig,
    build_state,
)
from repro.experiments.degraded import (
    DegradedReadResult,
    LatencyDistribution,
    run_degraded_read,
)
from repro.experiments.fig7 import Fig7Result, run_fig7, run_fig7_single
from repro.experiments.fig8 import Fig8Result, run_fig8, run_fig8_single
from repro.experiments.fig9 import Fig9Result, run_fig9, run_fig9_single
from repro.experiments.fig10 import Fig10Result, Fig10Row, run_fig10
from repro.experiments.factories import (
    CarFactory,
    EnumerationFactory,
    MinRackNoAggFactory,
    PiggybackFactory,
    RackMSRFactory,
    RandomAggregatedFactory,
    RandomRecoveryFactory,
)
from repro.experiments.regen import (
    RegenResult,
    StrategyOutcome,
    regen_to_dict,
    run_regen,
    run_regen_single,
)
from repro.experiments.runner import ExperimentRunner, RunResult, Series, mean_std

__all__ = [
    "CarFactory",
    "EnumerationFactory",
    "MinRackNoAggFactory",
    "RandomAggregatedFactory",
    "RandomRecoveryFactory",
    "ALL_CFS",
    "CFS1",
    "CFS2",
    "CFS3",
    "MB",
    "PAPER_CHUNK_SIZES",
    "CFSConfig",
    "build_state",
    "ExperimentRunner",
    "RunResult",
    "Series",
    "mean_std",
    "DegradedReadResult",
    "LatencyDistribution",
    "run_degraded_read",
    "Fig7Result",
    "run_fig7",
    "run_fig7_single",
    "Fig8Result",
    "run_fig8",
    "run_fig8_single",
    "Fig9Result",
    "run_fig9",
    "run_fig9_single",
    "Fig10Result",
    "Fig10Row",
    "run_fig10",
    "TrafficAblationResult",
    "run_traffic_ablation",
    "OversubscriptionPoint",
    "run_oversubscription_sweep",
    "GreedyVsOptimalResult",
    "run_greedy_vs_optimal",
    "RackMSRFactory",
    "PiggybackFactory",
    "RegenResult",
    "StrategyOutcome",
    "run_regen",
    "run_regen_single",
    "regen_to_dict",
]
