"""Figure 8: load-balancing rate λ versus Algorithm 2 iterations.

For each CFS setting the paper plots λ (mean and standard deviation
over 50 runs) after 10, 20, ..., 50 greedy iterations, against the
"without load balancing" level (CAR's per-stripe minimum-rack solution
before Algorithm 2 runs).

Expected shape: the no-LB level sits above 1 (e.g. 1.22 on CFS1); with
balancing λ drops quickly over the first iterations and plateaus close
to 1 (e.g. 1.02 on CFS1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configs import ALL_CFS, CFSConfig
from repro.experiments.factories import CarFactory
from repro.experiments.runner import ExperimentRunner, Series, mean_std

__all__ = ["Fig8Result", "run_fig8", "run_fig8_single", "PAPER_ITERATION_CHECKPOINTS"]

#: Iteration counts at which the paper samples λ.
PAPER_ITERATION_CHECKPOINTS: tuple[int, ...] = (10, 20, 30, 40, 50)


@dataclass(frozen=True)
class Fig8Result:
    """One CFS panel of Figure 8.

    Attributes:
        config: the CFS setting.
        balanced: λ at each iteration checkpoint (mean, std).
        unbalanced: the flat no-load-balancing λ level (mean, std).
        mean_substitutions: how many substitutions Algorithm 2 applied
            on average before converging.
    """

    config: CFSConfig
    balanced: Series
    unbalanced: Series
    mean_substitutions: float

    @property
    def final_lambda(self) -> float:
        """Mean λ after the full iteration budget."""
        return self.balanced.means[-1]

    @property
    def initial_lambda(self) -> float:
        """Mean λ without load balancing."""
        return self.unbalanced.means[-1]


def run_fig8_single(
    config: CFSConfig,
    runs: int = 50,
    iterations: int = 50,
    checkpoints: tuple[int, ...] = PAPER_ITERATION_CHECKPOINTS,
    base_seed: int = 20160708,
    num_stripes: int | None = None,
    workers: int | None = None,
) -> Fig8Result:
    """Reproduce one panel (one CFS) of Figure 8."""
    runner = ExperimentRunner(
        config, runs=runs, base_seed=base_seed, num_stripes=num_stripes
    )
    results = runner.run_all(
        {"CAR": CarFactory(iterations=iterations)}, workers=workers
    )
    lambdas_at: dict[int, list[float]] = {c: [] for c in checkpoints}
    initial: list[float] = []
    substitutions: list[float] = []
    for r in results:
        strategy = r.strategies["CAR"]
        trace = strategy.last_trace
        assert trace is not None
        initial.append(trace.initial_lambda)
        substitutions.append(float(trace.substitutions))
        for c in checkpoints:
            lambdas_at[c].append(trace.lambda_after(c))
    bal_means, bal_stds = [], []
    for c in checkpoints:
        mean, std = mean_std(lambdas_at[c])
        bal_means.append(mean)
        bal_stds.append(std)
    init_mean, init_std = mean_std(initial)
    return Fig8Result(
        config=config,
        balanced=Series(
            label="balancing with CAR",
            xs=tuple(float(c) for c in checkpoints),
            means=tuple(bal_means),
            stds=tuple(bal_stds),
        ),
        unbalanced=Series(
            label="without load balancing",
            xs=tuple(float(c) for c in checkpoints),
            means=tuple([init_mean] * len(checkpoints)),
            stds=tuple([init_std] * len(checkpoints)),
        ),
        mean_substitutions=mean_std(substitutions)[0],
    )


def run_fig8(
    runs: int = 50,
    iterations: int = 50,
    base_seed: int = 20160708,
    num_stripes: int | None = None,
    workers: int | None = None,
) -> list[Fig8Result]:
    """Reproduce all three panels of Figure 8."""
    return [
        run_fig8_single(
            cfg,
            runs=runs,
            iterations=iterations,
            base_seed=base_seed,
            num_stripes=num_stripes,
            workers=workers,
        )
        for cfg in ALL_CFS
    ]
