"""Plain-text rendering of experiment results.

Produces the rows/series the paper's figures plot, as aligned text
tables — the CLI and the benchmark harness both print through here so
``repro-car fig7`` output can be compared side by side with the paper.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.ablation import (
    GreedyVsOptimalResult,
    OversubscriptionPoint,
    TrafficAblationResult,
)
from repro.experiments.fig7 import Fig7Result
from repro.experiments.fig8 import Fig8Result
from repro.experiments.fig9 import Fig9Result
from repro.experiments.fig10 import Fig10Result
from repro.experiments.regen import RegenResult

__all__ = [
    "format_table",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_fig10",
    "render_regen",
    "render_traffic_ablation",
    "render_oversubscription",
    "render_greedy_vs_optimal",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_fig7(results: Sequence[Fig7Result]) -> str:
    """Figure 7 panels as one table (traffic in MB)."""
    rows = []
    for res in results:
        for x in res.series["CAR"].xs:
            car_mean, _ = res.series["CAR"].point(x)
            rr_mean, _ = res.series["RR"].point(x)
            saving = res.savings[int(x * (1 << 20))]
            rows.append(
                [
                    res.config.name,
                    f"{x:.0f}MB",
                    f"{car_mean:.1f}",
                    f"{rr_mean:.1f}",
                    f"{saving * 100:.1f}%",
                ]
            )
    return "Figure 7 - cross-rack repair traffic (MB)\n" + format_table(
        ["CFS", "chunk", "CAR", "RR", "saving"], rows
    )


def render_fig8(results: Sequence[Fig8Result]) -> str:
    """Figure 8 panels as one table (λ at iteration checkpoints)."""
    rows = []
    for res in results:
        for i, x in enumerate(res.balanced.xs):
            rows.append(
                [
                    res.config.name,
                    int(x),
                    f"{res.balanced.means[i]:.3f} ± {res.balanced.stds[i]:.3f}",
                    f"{res.unbalanced.means[i]:.3f} ± {res.unbalanced.stds[i]:.3f}",
                ]
            )
    return (
        "Figure 8 - load balancing rate vs iteration steps\n"
        + format_table(
            ["CFS", "iters", "with balancing", "without balancing"], rows
        )
    )


def render_fig9(results: Sequence[Fig9Result]) -> str:
    """Figure 9 panels as one table (seconds per lost chunk)."""
    rows = []
    for res in results:
        for x in res.series["CAR"].xs:
            car_mean, _ = res.series["CAR"].point(x)
            rr_mean, _ = res.series["RR"].point(x)
            saving = res.savings[int(x * (1 << 20))]
            rows.append(
                [
                    res.config.name,
                    f"{x:.0f}MB",
                    f"{car_mean:.3f}s",
                    f"{rr_mean:.3f}s",
                    f"{saving * 100:.1f}%",
                ]
            )
    return "Figure 9 - recovery time per lost chunk\n" + format_table(
        ["CFS", "chunk", "CAR", "RR", "saving"], rows
    )


def render_fig10(result: Fig10Result) -> str:
    """Figure 10, both panels, as two tables."""
    rows_a = [
        [
            r.config_name,
            r.strategy,
            f"{r.transmission_ratio * 100:.1f}%",
            f"{r.computation_ratio * 100:.1f}%",
        ]
        for r in result.rows
    ]
    rows_b = [
        [name, f"{ratio:.3f}"]
        for name, ratio in result.normalized_computation.items()
    ]
    return (
        "Figure 10(a) - transmission vs computation time ratio (8MB)\n"
        + format_table(["CFS", "strategy", "transmission", "computation"], rows_a)
        + "\n\nFigure 10(b) - CAR computation time normalised to RR\n"
        + format_table(["CFS", "CAR/RR"], rows_b)
    )


def render_regen(results: Sequence[RegenResult]) -> str:
    """The regenerating-code sweep as one table (4 MB chunks)."""
    rows = []
    for res in results:
        for name in ("CAR", "RR", "RackMSR", "Piggyback"):
            o = res.outcomes[name]
            mean_units, std_units = o.per_stripe_units
            lam_mean, lam_std = o.lambda_stats
            rows.append(
                [
                    res.config.name,
                    name,
                    o.placement,
                    f"{mean_units:.2f} ± {std_units:.2f}",
                    f"{o.bound:.2f}",
                    f"{lam_mean:.3f} ± {lam_std:.3f}",
                    f"{o.series.means[0]:.1f}",
                    str(o.violations),
                ]
            )
    return (
        "Regenerating codes - per-stripe cross-rack repair cost vs "
        "analytic bounds\n"
        + format_table(
            ["CFS", "strategy", "placement", "chunk units", "bound",
             "lambda", "MB @4MB", "violations"],
            rows,
        )
    )


def render_traffic_ablation(results: Sequence[TrafficAblationResult]) -> str:
    """The traffic-decomposition ablation as a table."""
    rows = []
    for res in results:
        for name, chunks in res.traffic.items():
            saving = "" if name == "RR" else f"{res.saving_over_rr(name) * 100:.1f}%"
            rows.append([res.config_name, name, f"{chunks:.1f}", saving])
    return (
        "Ablation - cross-rack traffic decomposition (chunk units)\n"
        + format_table(["CFS", "strategy", "chunks", "saving vs RR"], rows)
    )


def render_oversubscription(
    config_name: str, points: Sequence[OversubscriptionPoint]
) -> str:
    """The over-subscription sweep as a table."""
    rows = [
        [
            f"{p.oversubscription:.0f}:1",
            f"{p.car_time_per_chunk:.3f}s",
            f"{p.rr_time_per_chunk:.3f}s",
            f"{p.saving * 100:.1f}%",
        ]
        for p in points
    ]
    return (
        f"Ablation - recovery time vs core over-subscription ({config_name})\n"
        + format_table(["oversub", "CAR", "RR", "saving"], rows)
    )


def render_greedy_vs_optimal(results: Sequence[GreedyVsOptimalResult]) -> str:
    """The greedy-vs-enumeration comparison as a table."""
    rows = []
    for res in results:
        g_mean = sum(res.greedy_lambdas) / len(res.greedy_lambdas)
        o_mean = sum(res.optimal_lambdas) / len(res.optimal_lambdas)
        rows.append(
            [res.config_name, f"{g_mean:.3f}", f"{o_mean:.3f}", f"{res.mean_gap:.3f}"]
        )
    return (
        "Ablation - greedy (Algorithm 2) vs enumerated optimal lambda\n"
        + format_table(["CFS", "greedy", "optimal", "mean gap"], rows)
    )
