"""Ablation studies beyond the paper's figures.

Two design questions DESIGN.md calls out:

1. **Where does CAR's traffic saving come from?**  Decompose it into
   its two per-stripe techniques by running the two hybrids:
   minimum-rack selection *without* aggregation, and random selection
   *with* aggregation (:func:`run_traffic_ablation`).
2. **How does the advantage scale with core over-subscription?**
   Sweep the rack-uplink speed and simulate recovery time
   (:func:`run_oversubscription_sweep`) — the scarcer cross-rack
   bandwidth is, the more CAR's traffic reduction matters.
3. **How close is the greedy balancer to optimal?**  Compare
   Algorithm 2's λ with the enumerated optimum on small instances
   (:func:`run_greedy_vs_optimal`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.topology import BandwidthProfile
from repro.experiments.configs import MB, CFSConfig, build_state
from repro.experiments.factories import (
    CarFactory,
    EnumerationFactory,
    MinRackNoAggFactory,
    RandomAggregatedFactory,
    RandomRecoveryFactory,
)
from repro.experiments.runner import ExperimentRunner, mean_std
from repro.cluster.failure import FailureInjector
from repro.recovery.baselines import CarStrategy, RandomRecoveryStrategy
from repro.recovery.planner import plan_recovery
from repro.sim.recovery_sim import RecoverySimulator

__all__ = [
    "TrafficAblationResult",
    "run_traffic_ablation",
    "OversubscriptionPoint",
    "run_oversubscription_sweep",
    "GreedyVsOptimalResult",
    "run_greedy_vs_optimal",
]


@dataclass(frozen=True)
class TrafficAblationResult:
    """Mean cross-rack traffic (chunk units) per strategy variant."""

    config_name: str
    traffic: dict[str, float]

    def saving_over_rr(self, strategy: str) -> float:
        """Fractional saving of one variant over the RR baseline."""
        return 1.0 - self.traffic[strategy] / self.traffic["RR"]


def run_traffic_ablation(
    config: CFSConfig,
    runs: int = 20,
    base_seed: int = 20160711,
    num_stripes: int | None = None,
    workers: int | None = None,
) -> TrafficAblationResult:
    """Decompose CAR's traffic saving into its two techniques."""
    runner = ExperimentRunner(
        config, runs=runs, base_seed=base_seed, num_stripes=num_stripes
    )
    results = runner.run_all(
        {
            "RR": RandomRecoveryFactory(),
            "MinRack-noAgg": MinRackNoAggFactory(),
            "Random+Agg": RandomAggregatedFactory(),
            "CAR": CarFactory(),
        },
        workers=workers,
    )
    traffic = {
        name: mean_std(
            [r.solutions[name].total_cross_rack_traffic() for r in results]
        )[0]
        for name in ("RR", "MinRack-noAgg", "Random+Agg", "CAR")
    }
    return TrafficAblationResult(config_name=config.name, traffic=traffic)


@dataclass(frozen=True)
class OversubscriptionPoint:
    """Recovery-time comparison at one rack-uplink speed."""

    oversubscription: float
    car_time_per_chunk: float
    rr_time_per_chunk: float

    @property
    def saving(self) -> float:
        """CAR's fractional recovery-time saving at this point."""
        return 1.0 - self.car_time_per_chunk / self.rr_time_per_chunk


def run_oversubscription_sweep(
    config: CFSConfig,
    factors: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0),
    chunk_size: int = 4 * MB,
    seed: int = 20160712,
    num_stripes: int = 50,
) -> list[OversubscriptionPoint]:
    """Sweep the uplink over-subscription factor and simulate recovery.

    A factor ``f`` means each rack's uplink runs at ``1/f`` of the NIC
    speed.  CAR's time advantage should widen as ``f`` grows.
    """
    points = []
    for f in factors:
        bw = BandwidthProfile(
            node_nic_gbps=config.bandwidth.node_nic_gbps,
            rack_uplink_gbps=config.bandwidth.node_nic_gbps / f,
            core_gbps=config.bandwidth.core_gbps,
        )
        cfg = replace(config, bandwidth=bw)
        state = build_state(cfg, seed, num_stripes=num_stripes)
        event = FailureInjector(rng=seed).fail_random_node(state)
        times = {}
        for strategy in (CarStrategy(), RandomRecoveryStrategy(rng=seed)):
            solution = strategy.solve(state)
            plan = plan_recovery(state, event, solution)
            timing = RecoverySimulator(state).simulate(plan, chunk_size)
            times[strategy.name] = timing.time_per_chunk
        points.append(
            OversubscriptionPoint(
                oversubscription=f,
                car_time_per_chunk=times["CAR"],
                rr_time_per_chunk=times["RR"],
            )
        )
    return points


@dataclass(frozen=True)
class GreedyVsOptimalResult:
    """λ of Algorithm 2 versus the enumerated optimum (small instances)."""

    config_name: str
    greedy_lambdas: tuple[float, ...]
    optimal_lambdas: tuple[float, ...]

    @property
    def mean_gap(self) -> float:
        """Mean λ gap between greedy and optimal (0 = always optimal)."""
        gaps = [
            g - o for g, o in zip(self.greedy_lambdas, self.optimal_lambdas)
        ]
        return sum(gaps) / len(gaps)


def run_greedy_vs_optimal(
    config: CFSConfig,
    runs: int = 10,
    num_stripes: int = 6,
    base_seed: int = 20160713,
    workers: int | None = None,
) -> GreedyVsOptimalResult:
    """Compare Algorithm 2 against exhaustive enumeration.

    Uses few stripes so the cross-product enumeration stays tractable
    (its size is the paper's argument for the greedy algorithm).
    """
    runner = ExperimentRunner(
        config, runs=runs, base_seed=base_seed, num_stripes=num_stripes
    )
    results = runner.run_all(
        {"CAR": CarFactory(), "Enumeration": EnumerationFactory()},
        workers=workers,
    )
    greedy = tuple(
        r.solutions["CAR"].load_balancing_rate() for r in results
    )
    optimal = tuple(
        r.solutions["Enumeration"].load_balancing_rate() for r in results
    )
    return GreedyVsOptimalResult(
        config_name=config.name,
        greedy_lambdas=greedy,
        optimal_lambdas=optimal,
    )
