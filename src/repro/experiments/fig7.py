"""Figure 7: cross-rack repair traffic, CAR vs RR, vs chunk size.

For each CFS setting the paper plots the total cross-rack repair
traffic (MB) of CAR and RR at chunk sizes 4/8/16 MB, averaged over 50
runs.  Traffic in *chunk units* does not depend on the chunk size, so
each run is solved once and scaled — exactly how the quantity behaves
on the testbed (the paper's curves are linear in chunk size).

Expected shape: CAR well below RR everywhere, with the saving growing
with ``k`` (paper: 52.4 % on CFS1 at 4 MB up to 66.9 % on CFS3 at 16 MB).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.experiments.configs import ALL_CFS, MB, PAPER_CHUNK_SIZES, CFSConfig
from repro.experiments.factories import CarFactory, RandomRecoveryFactory
from repro.experiments.runner import ExperimentRunner, Series, mean_std

__all__ = ["Fig7Result", "run_fig7", "run_fig7_single"]


@dataclass(frozen=True)
class Fig7Result:
    """One CFS panel of Figure 7.

    Attributes:
        config: the CFS setting.
        series: traffic curves (MB) keyed by strategy name.
        savings: chunk size (bytes) -> fractional CAR saving over RR.
    """

    config: CFSConfig
    series: dict[str, Series]
    savings: dict[int, float]

    @property
    def max_saving(self) -> float:
        """The largest CAR-over-RR saving across chunk sizes."""
        return max(self.savings.values())


def run_fig7_single(
    config: CFSConfig,
    runs: int = 50,
    chunk_sizes: tuple[int, ...] = PAPER_CHUNK_SIZES,
    base_seed: int = 20160707,
    num_stripes: int | None = None,
    workers: int | None = None,
    telemetry: str | Path | None = None,
) -> Fig7Result:
    """Reproduce one panel (one CFS) of Figure 7.

    Args:
        telemetry: optional directory; the panel's runs then persist a
            ``trace.jsonl`` + ``metrics.json`` pair into it (see
            :class:`~repro.experiments.runner.ExperimentRunner`).
    """
    runner = ExperimentRunner(
        config, runs=runs, base_seed=base_seed, num_stripes=num_stripes,
        telemetry=telemetry,
    )
    results = runner.run_all(
        {"CAR": CarFactory(), "RR": RandomRecoveryFactory()},
        workers=workers,
    )
    chunks_per_run = {
        name: [r.solutions[name].total_cross_rack_traffic() for r in results]
        for name in ("CAR", "RR")
    }
    series: dict[str, Series] = {}
    for name, chunk_counts in chunks_per_run.items():
        means, stds = [], []
        for size in chunk_sizes:
            mean_chunks, std_chunks = mean_std(chunk_counts)
            means.append(mean_chunks * size / MB)
            stds.append(std_chunks * size / MB)
        series[name] = Series(
            label=name,
            xs=tuple(size / MB for size in chunk_sizes),
            means=tuple(means),
            stds=tuple(stds),
        )
    mean_car, _ = mean_std(chunks_per_run["CAR"])
    mean_rr, _ = mean_std(chunks_per_run["RR"])
    savings = {size: 1.0 - mean_car / mean_rr for size in chunk_sizes}
    return Fig7Result(config=config, series=series, savings=savings)


def run_fig7(
    runs: int = 50,
    chunk_sizes: tuple[int, ...] = PAPER_CHUNK_SIZES,
    base_seed: int = 20160707,
    num_stripes: int | None = None,
    workers: int | None = None,
    telemetry: str | Path | None = None,
) -> list[Fig7Result]:
    """Reproduce all three panels of Figure 7.

    Args:
        telemetry: optional directory; each panel writes its artifacts
            into a ``<telemetry>/<config name>`` subdirectory.
    """
    return [
        run_fig7_single(
            cfg,
            runs=runs,
            chunk_sizes=chunk_sizes,
            base_seed=base_seed,
            num_stripes=num_stripes,
            workers=workers,
            telemetry=(
                Path(telemetry) / cfg.name if telemetry is not None else None
            ),
        )
        for cfg in ALL_CFS
    ]
