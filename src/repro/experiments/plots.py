"""Plain-text (ASCII) chart rendering for terminal reports.

The paper's figures are line and bar charts; in an offline terminal
environment we render them as text so `repro-car ... --plot` output can
be eyeballed next to the paper.  Two chart forms:

- :func:`line_chart` — multi-series y-vs-x with a shared scaled axis;
- :func:`bar_chart` — labelled horizontal bars.

Rendering is deterministic and purely string-based, so the charts are
unit-testable.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.experiments.runner import Series

__all__ = ["bar_chart", "line_chart", "series_chart"]

_GLYPHS = "ox*+#@"


def bar_chart(
    title: str,
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart of labelled values.

    Args:
        title: heading line.
        values: label -> value (non-negative).
        width: character width of the longest bar.
        unit: suffix printed after each value.
    """
    if not values:
        raise ConfigurationError("bar_chart needs at least one value")
    if any(v < 0 for v in values.values()):
        raise ConfigurationError("bar_chart values must be non-negative")
    peak = max(values.values()) or 1.0
    label_w = max(len(k) for k in values)
    lines = [title]
    for label, value in values.items():
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(f"{label.rjust(label_w)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def line_chart(
    title: str,
    series: Mapping[str, Sequence[tuple[float, float]]],
    height: int = 12,
    width: int = 60,
    y_label: str = "",
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Args:
        title: heading line.
        series: name -> sequence of (x, y) points.
        height / width: plot area size in characters.
        y_label: y-axis annotation in the legend.
    """
    if not series:
        raise ConfigurationError("line_chart needs at least one series")
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ConfigurationError("line_chart needs at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        for x, y in pts:
            col = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][col] = glyph

    lines = [title]
    for r, row in enumerate(grid):
        y_val = y_max - r * y_span / (height - 1) if height > 1 else y_max
        lines.append(f"{y_val:>10.3f} |{''.join(row)}")
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':>11} {x_min:<10g}{'':^{max(0, width - 22)}}{x_max:>10g}")
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}" + (f"   (y: {y_label})" if y_label else ""))
    return "\n".join(lines)


def series_chart(title: str, series_list: Sequence[Series], y_label: str = "") -> str:
    """Render experiment :class:`Series` objects as a line chart."""
    mapping = {
        s.label: list(zip(s.xs, s.means)) for s in series_list
    }
    return line_chart(title, mapping, y_label=y_label)
