"""Evaluation configurations: the paper's Tables II and III.

Table II defines three CFS settings (rack layouts + RS parameters);
Table III gives the per-rack hardware.  :func:`build_state` constructs a
ready-to-fail :class:`~repro.cluster.state.ClusterState` for a config,
mirroring the paper's methodology (100 stripes, random placement with
single-rack fault tolerance).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cluster.placement import (
    RackAlignedPlacementPolicy,
    RandomPlacementPolicy,
)
from repro.cluster.state import ClusterState, DataStore
from repro.cluster.topology import BandwidthProfile, ClusterTopology
from repro.erasure.rs import RSCode
from repro.errors import ConfigurationError

__all__ = [
    "MB",
    "CFSConfig",
    "CFS1",
    "CFS2",
    "CFS3",
    "ALL_CFS",
    "PAPER_CHUNK_SIZES",
    "build_state",
]

#: One mebibyte — chunk sizes in the paper are 4/8/16 MB.
MB = 1 << 20

#: The chunk sizes every traffic/time figure sweeps.
PAPER_CHUNK_SIZES: tuple[int, ...] = (4 * MB, 8 * MB, 16 * MB)


@dataclass(frozen=True)
class CFSConfig:
    """One row of Table II.

    Attributes:
        name: config label ("CFS1"...).
        rack_sizes: nodes per rack (Table II's A1..A5 columns).
        k / m: RS code parameters.
        bandwidth: fabric speeds; the default models the paper's GbE
            testbed (1 Gb/s NICs, one shared 1 Gb/s uplink per rack).
        num_stripes: stripes per experiment (paper: 100).
    """

    name: str
    rack_sizes: tuple[int, ...]
    k: int
    m: int
    bandwidth: BandwidthProfile = field(default_factory=BandwidthProfile)
    num_stripes: int = 100

    def __post_init__(self) -> None:
        if self.k + self.m > sum(self.rack_sizes):
            raise ConfigurationError(
                f"{self.name}: stripe width {self.k + self.m} exceeds "
                f"{sum(self.rack_sizes)} nodes"
            )

    @property
    def num_nodes(self) -> int:
        """Total node count."""
        return sum(self.rack_sizes)

    @property
    def num_racks(self) -> int:
        """Rack count (the paper's ``r``)."""
        return len(self.rack_sizes)

    def topology(self) -> ClusterTopology:
        """Fresh topology for this config."""
        return ClusterTopology.from_rack_sizes(
            self.rack_sizes, bandwidth=self.bandwidth
        )

    def code(self) -> RSCode:
        """The config's RS code."""
        return RSCode(self.k, self.m)


#: Table II row 1: 3 racks (4/3/3 nodes), (k=4, m=3).
CFS1 = CFSConfig(name="CFS1", rack_sizes=(4, 3, 3), k=4, m=3)
#: Table II row 2: 4 racks (4/3/3/3), (k=6, m=3) — Google Colossus' code.
CFS2 = CFSConfig(name="CFS2", rack_sizes=(4, 3, 3, 3), k=6, m=3)
#: Table II row 3: 5 racks (6/4/5/3/2), (k=10, m=4) — Facebook HDFS-RAID.
CFS3 = CFSConfig(name="CFS3", rack_sizes=(6, 4, 5, 3, 2), k=10, m=4)

#: All three settings, evaluation order.
ALL_CFS: tuple[CFSConfig, ...] = (CFS1, CFS2, CFS3)


def build_state(
    config: CFSConfig,
    seed: int,
    with_data: bool = False,
    chunk_size: int = 4096,
    num_stripes: int | None = None,
    placement_policy: str = "random",
) -> ClusterState:
    """Construct a cluster state per the paper's methodology.

    Args:
        config: which CFS setting.
        seed: placement RNG seed (one seed per experiment run).
        with_data: materialise real chunk bytes (needed only when the
            experiment executes and verifies reconstructions).
        chunk_size: byte size for the data store when ``with_data``.
        num_stripes: override the config's stripe count.
        placement_policy: ``"random"`` (the paper's methodology) or
            ``"rack_aligned"`` (the deterministic chunk -> rack layout
            rack-aware regenerating strategies assume).
    """
    stripes = num_stripes if num_stripes is not None else config.num_stripes
    topology = config.topology()
    code = config.code()
    if placement_policy == "random":
        policy = RandomPlacementPolicy(rng=random.Random(seed))
    elif placement_policy == "rack_aligned":
        policy = RackAlignedPlacementPolicy(rng=random.Random(seed))
    else:
        raise ConfigurationError(
            f"unknown placement policy {placement_policy!r} "
            f"(expected 'random' or 'rack_aligned')"
        )
    placement = policy.place(topology, stripes, config.k, config.m)
    data = (
        DataStore(code, stripes, chunk_size=chunk_size, seed=seed)
        if with_data
        else None
    )
    return ClusterState(topology, code, placement, data)
