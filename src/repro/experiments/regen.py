"""Regenerating-code sweep: CAR vs RR vs rack-aware MSR vs piggybacked RS.

The paper's CAR reduces *cross-rack* repair traffic by partial decoding
inside racks; regenerating codes attack the same quantity by shipping
sub-chunk packets.  This experiment puts both families on the paper's
CFS configurations and sweeps cross-rack traffic (per chunk size) and
the load-balancing rate λ for four strategies:

- **CAR** and **RR** on the paper's random placement (the Figure 7
  pairing);
- **Piggyback** (Rashmi et al., arXiv:1309.0186) on the same random
  placement — it reuses the RS geometry as-is;
- **RackMSR** (Chen & Barg, arXiv:1901.04419) on the rack-aligned
  placement its striped construction assumes.

Every measured per-stripe cross-rack figure is validated against its
analytic bound (:mod:`repro.analysis.bounds`): equality
``dbar / (dbar - kbar + 1)`` chunk units for RackMSR,
``(k + |G|) / 2`` for a piggybacked data repair (``k`` for parity),
``min(k, r - 1)`` for CAR and ``k`` for RR.  Violations are counted in
the result — the regression suite asserts the count is zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.bounds import (
    piggyback_data_repair_cost,
    rack_aware_msr_cross_rack,
)
from repro.erasure.piggyback import balanced_groups
from repro.experiments.configs import ALL_CFS, MB, PAPER_CHUNK_SIZES, CFSConfig
from repro.experiments.factories import (
    CarFactory,
    PiggybackFactory,
    RackMSRFactory,
    RandomRecoveryFactory,
)
from repro.experiments.runner import (
    ExperimentRunner,
    RunResult,
    Series,
    mean_std,
)
from repro.recovery.regenerating import rack_msr_params

__all__ = [
    "StrategyOutcome",
    "RegenResult",
    "run_regen_single",
    "run_regen",
    "regen_to_dict",
]

#: Tolerance for bound checks (float accumulation over ~100 stripes).
_EPS = 1e-9


@dataclass(frozen=True)
class StrategyOutcome:
    """One strategy's sweep summary on one CFS configuration.

    Attributes:
        name: strategy label.
        placement: which placement policy the strategy's arm ran on.
        bound: worst-case analytic per-stripe cross-rack bound (chunk
            units) — per-stripe checks use the per-stripe bound, which
            can be tighter (piggybacked data repairs).
        per_stripe_units: (mean, std) measured per-stripe cross-rack
            chunk units over all runs.
        lambda_stats: (mean, std) of λ over runs.
        series: cross-rack traffic in MB vs chunk size in MB.
        violations: stripes whose measured cross-rack units exceeded
            their analytic bound (must be 0).
    """

    name: str
    placement: str
    bound: float
    per_stripe_units: tuple[float, float]
    lambda_stats: tuple[float, float]
    series: Series
    violations: int


@dataclass(frozen=True)
class RegenResult:
    """The regenerating-code sweep on one CFS configuration.

    Attributes:
        config: the CFS setting.
        kbar / dbar: rack-aware MSR parameters derived from the rack
            count (:func:`~repro.recovery.regenerating.rack_msr_params`).
        outcomes: strategy name -> its sweep summary.
    """

    config: CFSConfig
    kbar: int
    dbar: int
    outcomes: dict[str, StrategyOutcome]

    @property
    def total_violations(self) -> int:
        """Bound violations across all strategies (must be 0)."""
        return sum(o.violations for o in self.outcomes.values())


def _per_stripe_bound(
    name: str, lost_chunk: int, config: CFSConfig, kbar: int, dbar: int
) -> float:
    """Analytic cross-rack bound for one stripe's repair, chunk units."""
    k, r = config.k, config.num_racks
    if name == "RackMSR":
        # Each of a node's chunks is one alpha unit of the striped code.
        return rack_aware_msr_cross_rack(1.0, kbar, dbar)
    if name == "Piggyback":
        if lost_chunk < k:
            groups = balanced_groups(k, config.m)
            size = next(len(g) for g in groups if lost_chunk in g)
            return piggyback_data_repair_cost(k, size)
        return float(k)
    if name == "CAR":
        # Aggregation ships at most one chunk per intact rack, and never
        # more than the k chunks an RS repair reads.
        return float(min(k, r - 1))
    return float(k)  # RR: a plain RS repair reads k chunks.


def _summarise(
    name: str,
    placement: str,
    results: list[RunResult],
    config: CFSConfig,
    kbar: int,
    dbar: int,
    chunk_sizes: tuple[int, ...],
) -> StrategyOutcome:
    totals: list[float] = []
    lambdas: list[float] = []
    per_stripe: list[float] = []
    violations = 0
    worst_bound = 0.0
    for r in results:
        sol = r.solutions[name]
        totals.append(sol.total_cross_rack_traffic())
        lambdas.append(sol.load_balancing_rate())
        for s in sol:
            measured = sum(s.cross_rack_chunks(sol.aggregated).values())
            per_stripe.append(measured)
            bound = _per_stripe_bound(
                name, s.lost_chunk, config, kbar, dbar
            )
            worst_bound = max(worst_bound, bound)
            if measured > bound + _EPS:
                violations += 1
    means, stds = [], []
    mean_total, std_total = mean_std(totals)
    for size in chunk_sizes:
        means.append(mean_total * size / MB)
        stds.append(std_total * size / MB)
    return StrategyOutcome(
        name=name,
        placement=placement,
        bound=worst_bound,
        per_stripe_units=mean_std(per_stripe),
        lambda_stats=mean_std(lambdas),
        series=Series(
            label=name,
            xs=tuple(size / MB for size in chunk_sizes),
            means=tuple(means),
            stds=tuple(stds),
        ),
        violations=violations,
    )


def run_regen_single(
    config: CFSConfig,
    runs: int = 50,
    chunk_sizes: tuple[int, ...] = PAPER_CHUNK_SIZES,
    base_seed: int = 20190104,
    num_stripes: int | None = None,
    workers: int | None = None,
    telemetry: str | Path | None = None,
) -> RegenResult:
    """The regenerating-code sweep on one CFS configuration.

    Two paired run batches share ``base_seed``: CAR, RR and Piggyback
    solve the random-placement states (the paper's methodology), while
    RackMSR solves rack-aligned states of the same seeds — the layout
    its striped construction requires.  Within each batch every
    strategy sees the same placement and failure.
    """
    kbar, dbar = rack_msr_params(config.num_racks)
    tele = Path(telemetry) if telemetry is not None else None
    random_runner = ExperimentRunner(
        config, runs=runs, base_seed=base_seed, num_stripes=num_stripes,
        telemetry=(tele / "random" if tele is not None else None),
    )
    random_results = random_runner.run_all(
        {
            "CAR": CarFactory(),
            "RR": RandomRecoveryFactory(),
            "Piggyback": PiggybackFactory(),
        },
        workers=workers,
    )
    aligned_runner = ExperimentRunner(
        config, runs=runs, base_seed=base_seed, num_stripes=num_stripes,
        telemetry=(tele / "rack_aligned" if tele is not None else None),
        placement_policy="rack_aligned",
    )
    aligned_results = aligned_runner.run_all(
        {"RackMSR": RackMSRFactory()}, workers=workers
    )
    outcomes = {
        name: _summarise(
            name, "random", random_results, config, kbar, dbar, chunk_sizes
        )
        for name in ("CAR", "RR", "Piggyback")
    }
    outcomes["RackMSR"] = _summarise(
        "RackMSR", "rack_aligned", aligned_results, config, kbar, dbar,
        chunk_sizes,
    )
    return RegenResult(config=config, kbar=kbar, dbar=dbar, outcomes=outcomes)


def run_regen(
    runs: int = 50,
    chunk_sizes: tuple[int, ...] = PAPER_CHUNK_SIZES,
    base_seed: int = 20190104,
    num_stripes: int | None = None,
    workers: int | None = None,
    telemetry: str | Path | None = None,
) -> list[RegenResult]:
    """The regenerating-code sweep on all three CFS configurations."""
    return [
        run_regen_single(
            cfg,
            runs=runs,
            chunk_sizes=chunk_sizes,
            base_seed=base_seed,
            num_stripes=num_stripes,
            workers=workers,
            telemetry=(
                Path(telemetry) / cfg.name if telemetry is not None else None
            ),
        )
        for cfg in ALL_CFS
    ]


def regen_to_dict(results: list[RegenResult]) -> dict:
    """JSON-ready form of the sweep (the CI artifact)."""
    return {
        "experiment": "regen",
        "configs": [
            {
                "config": res.config.name,
                "kbar": res.kbar,
                "dbar": res.dbar,
                "total_violations": res.total_violations,
                "strategies": {
                    name: {
                        "placement": o.placement,
                        "bound_chunk_units": o.bound,
                        "per_stripe_units_mean": o.per_stripe_units[0],
                        "per_stripe_units_std": o.per_stripe_units[1],
                        "lambda_mean": o.lambda_stats[0],
                        "lambda_std": o.lambda_stats[1],
                        "violations": o.violations,
                        "traffic_mb": {
                            f"{x:.0f}MB": o.series.means[i]
                            for i, x in enumerate(o.series.xs)
                        },
                    }
                    for name, o in res.outcomes.items()
                },
            }
            for res in results
        ],
    }
