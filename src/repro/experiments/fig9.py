"""Figure 9: recovery time per lost chunk, CAR vs RR, vs chunk size.

The paper launches all stripes' repairs simultaneously, measures the
overall duration and divides by the number of lost chunks.  We
reproduce that with the fluid network simulator: the recovery plan's
full transfer/compute DAG is simulated over the GbE fabric (Table III
hardware) and the makespan per chunk reported.

Expected shape: CAR below RR at every chunk size; both linear in chunk
size; the gap grows with ``k`` (paper: up to 53.8 % on CFS2 at 8 MB).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configs import ALL_CFS, MB, PAPER_CHUNK_SIZES, CFSConfig
from repro.experiments.factories import CarFactory, RandomRecoveryFactory
from repro.experiments.runner import ExperimentRunner, Series, mean_std
from repro.recovery.planner import plan_recovery
from repro.sim.hardware import HardwareModel
from repro.sim.recovery_sim import RecoverySimulator

__all__ = ["Fig9Result", "run_fig9", "run_fig9_single"]


@dataclass(frozen=True)
class Fig9Result:
    """One CFS panel of Figure 9.

    Attributes:
        config: the CFS setting.
        series: per-strategy recovery time per lost chunk (seconds)
            versus chunk size (MB).
        savings: chunk size (bytes) -> fractional CAR time saving.
    """

    config: CFSConfig
    series: dict[str, Series]
    savings: dict[int, float]

    @property
    def max_saving(self) -> float:
        """Largest CAR-over-RR time saving across chunk sizes."""
        return max(self.savings.values())


def run_fig9_single(
    config: CFSConfig,
    runs: int = 5,
    chunk_sizes: tuple[int, ...] = PAPER_CHUNK_SIZES,
    base_seed: int = 20160709,
    num_stripes: int | None = None,
    include_disk: bool = True,
    workers: int | None = None,
) -> Fig9Result:
    """Reproduce one panel (one CFS) of Figure 9.

    ``runs`` defaults below the paper's 50 because each run performs a
    full fluid simulation; the variance across runs is small.
    """
    runner = ExperimentRunner(
        config, runs=runs, base_seed=base_seed, num_stripes=num_stripes
    )
    results = runner.run_all(
        {"CAR": CarFactory(), "RR": RandomRecoveryFactory()},
        workers=workers,
    )
    times: dict[str, dict[int, list[float]]] = {
        name: {size: [] for size in chunk_sizes} for name in ("CAR", "RR")
    }
    for r in results:
        hardware = HardwareModel(r.state.topology)
        simulator = RecoverySimulator(
            r.state, hardware=hardware, include_disk=include_disk
        )
        for name in ("CAR", "RR"):
            plan = plan_recovery(r.state, r.event, r.solutions[name])
            for size in chunk_sizes:
                timing = simulator.simulate(plan, size)
                times[name][size].append(timing.time_per_chunk)
    series: dict[str, Series] = {}
    for name in ("CAR", "RR"):
        means, stds = [], []
        for size in chunk_sizes:
            mean, std = mean_std(times[name][size])
            means.append(mean)
            stds.append(std)
        series[name] = Series(
            label=name,
            xs=tuple(size / MB for size in chunk_sizes),
            means=tuple(means),
            stds=tuple(stds),
        )
    savings = {
        size: 1.0
        - mean_std(times["CAR"][size])[0] / mean_std(times["RR"][size])[0]
        for size in chunk_sizes
    }
    return Fig9Result(config=config, series=series, savings=savings)


def run_fig9(
    runs: int = 5,
    chunk_sizes: tuple[int, ...] = PAPER_CHUNK_SIZES,
    base_seed: int = 20160709,
    num_stripes: int | None = None,
    workers: int | None = None,
) -> list[Fig9Result]:
    """Reproduce all three panels of Figure 9."""
    return [
        run_fig9_single(
            cfg,
            runs=runs,
            chunk_sizes=chunk_sizes,
            base_seed=base_seed,
            num_stripes=num_stripes,
            workers=workers,
        )
        for cfg in ALL_CFS
    ]
