"""Degraded-read latency: serving reads of lost chunks on demand.

Extension experiment (motivated by the paper's citation of
degraded-first MapReduce scheduling, Li et al. DSN'14): while a node is
down, client reads of its chunks must be served by on-the-fly
reconstruction.  Latency per request is what matters — not aggregate
traffic — so this experiment evaluates the *per-stripe* repair pipeline
of CAR versus RR under the serialized timing model and reports the
latency distribution (mean / p50 / p99 / max).

Expected shape: CAR's latency is lower and tighter — it moves fewer
chunks through the client's downlink and parallelises the gather across
racks.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.experiments.configs import MB, CFSConfig
from repro.experiments.factories import CarFactory, RandomRecoveryFactory
from repro.experiments.runner import ExperimentRunner
from repro.recovery.planner import plan_recovery
from repro.sim.hardware import HardwareModel
from repro.sim.timing import StripeSerialTimingModel

__all__ = ["LatencyDistribution", "DegradedReadResult", "run_degraded_read"]


@dataclass(frozen=True)
class LatencyDistribution:
    """Summary of per-request degraded-read latencies (seconds)."""

    strategy: str
    mean: float
    p50: float
    p99: float
    worst: float
    samples: int


def _distribution(strategy: str, samples: list[float]) -> LatencyDistribution:
    ordered = sorted(samples)
    n = len(ordered)
    return LatencyDistribution(
        strategy=strategy,
        mean=statistics.fmean(ordered),
        p50=ordered[n // 2],
        p99=ordered[min(n - 1, int(0.99 * n))],
        worst=ordered[-1],
        samples=n,
    )


@dataclass(frozen=True)
class DegradedReadResult:
    """Latency distributions for one CFS setting."""

    config_name: str
    chunk_size: int
    distributions: dict[str, LatencyDistribution]

    def speedup(self) -> float:
        """RR mean latency divided by CAR mean latency."""
        return self.distributions["RR"].mean / self.distributions["CAR"].mean


def run_degraded_read(
    config: CFSConfig,
    runs: int = 5,
    chunk_size: int = 4 * MB,
    base_seed: int = 20160714,
    num_stripes: int | None = None,
    workers: int | None = None,
) -> DegradedReadResult:
    """Measure degraded-read latency distributions on one CFS setting.

    Every affected stripe of every run contributes one latency sample
    per strategy (one degraded read = one stripe repair served alone).
    """
    runner = ExperimentRunner(
        config, runs=runs, base_seed=base_seed, num_stripes=num_stripes
    )
    results = runner.run_all(
        {"CAR": CarFactory(), "RR": RandomRecoveryFactory()},
        workers=workers,
    )
    samples: dict[str, list[float]] = {"CAR": [], "RR": []}
    for r in results:
        model = StripeSerialTimingModel(
            r.state, hardware=HardwareModel(r.state.topology)
        )
        for name in ("CAR", "RR"):
            plan = plan_recovery(r.state, r.event, r.solutions[name])
            timing = model.evaluate(plan, chunk_size)
            samples[name].extend(s.total for s in timing.stripes)
    return DegradedReadResult(
        config_name=config.name,
        chunk_size=chunk_size,
        distributions={
            name: _distribution(name, vals) for name, vals in samples.items()
        },
    )
