"""Figure 10: transmission vs computation time breakdown (8 MB chunks).

Panel (a): for each CFS setting and each strategy, the fractions of the
per-chunk recovery time spent transmitting data versus computing GF
decodes, under the paper's per-stripe measurement (the serialized
timing model).

Panel (b): CAR's total decoding computation time normalised to RR's.

Expected shapes: transmission dominates everywhere (~85-93 %); the
computation share shrinks as ``k`` grows; the CAR/RR computation ratio
stays within ~10 % of 1 (CAR re-partitions the same decode work).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configs import ALL_CFS, MB, CFSConfig
from repro.experiments.factories import CarFactory, RandomRecoveryFactory
from repro.experiments.runner import ExperimentRunner, mean_std
from repro.recovery.planner import plan_recovery
from repro.sim.hardware import HardwareModel
from repro.sim.timing import StripeSerialTimingModel

__all__ = ["Fig10Row", "Fig10Result", "run_fig10"]

#: The paper fixes the chunk size at 8 MB for this experiment.
FIG10_CHUNK_SIZE = 8 * MB


@dataclass(frozen=True)
class Fig10Row:
    """Breakdown for one (CFS, strategy) pair — one bar of panel (a).

    Attributes:
        config_name: CFS label.
        strategy: "CAR" or "RR".
        transmission_ratio / computation_ratio: the two bar segments.
        computation_seconds: absolute decode time (panel (b) input).
    """

    config_name: str
    strategy: str
    transmission_ratio: float
    computation_ratio: float
    computation_seconds: float


@dataclass(frozen=True)
class Fig10Result:
    """Both panels of Figure 10.

    Attributes:
        rows: panel (a) — one row per (CFS, strategy).
        normalized_computation: panel (b) — CFS name -> CAR computation
            time divided by RR computation time.
    """

    rows: tuple[Fig10Row, ...]
    normalized_computation: dict[str, float]

    def row(self, config_name: str, strategy: str) -> Fig10Row:
        """Look up one bar.

        Raises:
            KeyError: if the pair is absent.
        """
        for r in self.rows:
            if (r.config_name, r.strategy) == (config_name, strategy):
                return r
        raise KeyError((config_name, strategy))


def run_fig10(
    runs: int = 10,
    chunk_size: int = FIG10_CHUNK_SIZE,
    base_seed: int = 20160710,
    num_stripes: int | None = None,
    configs: tuple[CFSConfig, ...] = ALL_CFS,
    workers: int | None = None,
) -> Fig10Result:
    """Reproduce Figure 10 (both panels)."""
    rows: list[Fig10Row] = []
    normalized: dict[str, float] = {}
    for config in configs:
        runner = ExperimentRunner(
            config, runs=runs, base_seed=base_seed, num_stripes=num_stripes
        )
        results = runner.run_all(
            {"CAR": CarFactory(), "RR": RandomRecoveryFactory()},
            workers=workers,
        )
        ratios: dict[str, list[float]] = {"CAR": [], "RR": []}
        comp_seconds: dict[str, list[float]] = {"CAR": [], "RR": []}
        for r in results:
            hardware = HardwareModel(r.state.topology)
            model = StripeSerialTimingModel(r.state, hardware=hardware)
            for name in ("CAR", "RR"):
                plan = plan_recovery(r.state, r.event, r.solutions[name])
                timing = model.evaluate(plan, chunk_size)
                ratios[name].append(timing.computation_ratio)
                comp_seconds[name].append(timing.computation_time)
        for name in ("CAR", "RR"):
            comp_ratio = mean_std(ratios[name])[0]
            rows.append(
                Fig10Row(
                    config_name=config.name,
                    strategy=name,
                    transmission_ratio=1.0 - comp_ratio,
                    computation_ratio=comp_ratio,
                    computation_seconds=mean_std(comp_seconds[name])[0],
                )
            )
        normalized[config.name] = (
            mean_std(comp_seconds["CAR"])[0] / mean_std(comp_seconds["RR"])[0]
        )
    return Fig10Result(rows=tuple(rows), normalized_computation=normalized)
