"""Picklable per-run strategy factories for the experiment drivers.

:meth:`ExperimentRunner.run_all` re-instantiates every strategy with the
run's seed so randomised strategies are reproducible.  The natural
``lambda seed: SomeStrategy(...)`` closures cannot cross a process
boundary, so the parallel driver (``workers > 1``) needs factories that
pickle: the frozen dataclasses below capture the constructor arguments
as fields and build the strategy in ``__call__``.

They behave identically to the closures they replace in serial runs, so
the figure drivers use them unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.recovery.baselines import (
    CarStrategy,
    EnumerationBalancedStrategy,
    MinRackNoAggregationStrategy,
    RandomAggregatedStrategy,
    RandomRecoveryStrategy,
    RecoveryStrategy,
)
from repro.recovery.regenerating import PiggybackStrategy, RackAwareMSRStrategy

__all__ = [
    "CarFactory",
    "RandomRecoveryFactory",
    "MinRackNoAggFactory",
    "RandomAggregatedFactory",
    "EnumerationFactory",
    "RackMSRFactory",
    "PiggybackFactory",
]


@dataclass(frozen=True)
class CarFactory:
    """Builds a :class:`CarStrategy`; the seed is unused (CAR is
    deterministic given the cluster state)."""

    load_balance: bool = True
    iterations: int = 50
    warm_start: bool = False

    def __call__(self, seed: int) -> RecoveryStrategy:
        return CarStrategy(
            load_balance=self.load_balance,
            iterations=self.iterations,
            warm_start=self.warm_start,
        )


@dataclass(frozen=True)
class RandomRecoveryFactory:
    """Builds the RR baseline seeded with the run seed."""

    def __call__(self, seed: int) -> RecoveryStrategy:
        return RandomRecoveryStrategy(rng=seed)


@dataclass(frozen=True)
class MinRackNoAggFactory:
    """Builds the minimum-rack-without-aggregation ablation strategy."""

    def __call__(self, seed: int) -> RecoveryStrategy:
        return MinRackNoAggregationStrategy()


@dataclass(frozen=True)
class RandomAggregatedFactory:
    """Builds the random-with-aggregation ablation, seeded per run."""

    def __call__(self, seed: int) -> RecoveryStrategy:
        return RandomAggregatedStrategy(rng=seed)


@dataclass(frozen=True)
class RackMSRFactory:
    """Builds the rack-aware MSR strategy (deterministic; seed unused).

    ``kbar=None`` derives the largest feasible rack-level threshold
    from the topology at solve time.
    """

    kbar: int | None = None

    def __call__(self, seed: int) -> RecoveryStrategy:
        return RackAwareMSRStrategy(kbar=self.kbar)


@dataclass(frozen=True)
class PiggybackFactory:
    """Builds the piggybacked-RS strategy (deterministic; seed unused)."""

    def __call__(self, seed: int) -> RecoveryStrategy:
        return PiggybackStrategy()


@dataclass(frozen=True)
class EnumerationFactory:
    """Builds the exhaustive λ-optimal strategy (small instances only)."""

    max_combinations: int = 200_000

    def __call__(self, seed: int) -> RecoveryStrategy:
        return EnumerationBalancedStrategy(
            max_combinations=self.max_combinations
        )
