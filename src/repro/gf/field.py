"""Scalar arithmetic in GF(2^w).

:class:`GaloisField` wraps the precomputed tables from
:mod:`repro.gf.tables` and exposes the usual field operations on plain
Python integers.  Elements are represented as ``int`` in ``[0, 2^w)``;
addition is XOR, multiplication/division go through the log/antilog
tables.

For bulk (chunk-sized) operations on numpy buffers use
:mod:`repro.gf.vector`, which shares the same tables.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import DivisionByZeroError, FieldError
from repro.gf.tables import FieldTables, get_tables

__all__ = ["GaloisField", "GF4", "GF8", "GF16", "gf"]


class GaloisField:
    """The finite field GF(2^w) for w in {4, 8, 16}.

    Instances are cheap, stateless views over cached tables; prefer the
    module-level singletons :data:`GF8` etc. or the :func:`gf` factory.
    """

    __slots__ = ("tables",)

    def __init__(self, w: int) -> None:
        self.tables: FieldTables = get_tables(w)

    # -- introspection ------------------------------------------------

    @property
    def w(self) -> int:
        """Field width in bits."""
        return self.tables.w

    @property
    def order(self) -> int:
        """Number of field elements, ``2^w``."""
        return self.tables.order

    def __repr__(self) -> str:
        return f"GaloisField(w={self.w})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GaloisField) and other.w == self.w

    def __hash__(self) -> int:
        return hash(("GaloisField", self.w))

    def __reduce__(self):
        # Pickle as a factory call: unpickling returns the cached
        # singleton (cheap — no table arrays ship across process pools).
        return (gf, (self.w,))

    # -- validation ---------------------------------------------------

    def check(self, a: int) -> int:
        """Validate that ``a`` is a field element and return it.

        Raises:
            FieldError: if ``a`` is outside ``[0, 2^w)``.
        """
        if not 0 <= a < self.order:
            raise FieldError(f"{a} is not an element of GF(2^{self.w})")
        return a

    # -- field operations ----------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Field addition (XOR). Identical to :meth:`sub`."""
        return self.check(a) ^ self.check(b)

    # In characteristic 2, subtraction and addition coincide.
    sub = add

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log/antilog tables."""
        self.check(a)
        self.check(b)
        if a == 0 or b == 0:
            return 0
        t = self.tables
        return int(t.exp[int(t.log[a]) + int(t.log[b])])

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``.

        Raises:
            DivisionByZeroError: if ``b`` is zero.
        """
        self.check(a)
        self.check(b)
        if b == 0:
            raise DivisionByZeroError(f"division by zero in GF(2^{self.w})")
        if a == 0:
            return 0
        t = self.tables
        return int(t.exp[int(t.log[a]) - int(t.log[b]) + t.group_order])

    def inv(self, a: int) -> int:
        """Multiplicative inverse of ``a``.

        Raises:
            DivisionByZeroError: if ``a`` is zero.
        """
        self.check(a)
        if a == 0:
            raise DivisionByZeroError(f"zero has no inverse in GF(2^{self.w})")
        return int(self.tables.inv[a])

    def pow(self, a: int, n: int) -> int:
        """Raise ``a`` to the integer power ``n`` (``n`` may be negative)."""
        self.check(a)
        if a == 0:
            if n < 0:
                raise DivisionByZeroError("0 cannot be raised to a negative power")
            return 1 if n == 0 else 0
        t = self.tables
        e = (int(t.log[a]) * n) % t.group_order
        return int(t.exp[e])

    def generator_pow(self, n: int) -> int:
        """Return ``g^n`` for the group generator ``g = 2``."""
        return int(self.tables.exp[n % self.tables.group_order])

    def dot(self, xs: list[int], ys: list[int]) -> int:
        """Inner product of two equal-length coefficient vectors."""
        if len(xs) != len(ys):
            raise FieldError("dot product requires equal-length vectors")
        acc = 0
        for x, y in zip(xs, ys):
            acc ^= self.mul(x, y)
        return acc


@lru_cache(maxsize=None)
def gf(w: int) -> GaloisField:
    """Return the cached :class:`GaloisField` instance for width ``w``."""
    return GaloisField(w)


#: GF(2^4) — sixteen elements; the smallest supported field.
GF4 = gf(4)
#: GF(2^8) — the workhorse field; one byte per element (Jerasure default).
GF8 = gf(8)
#: GF(2^16) — for stripes wider than 255 + parity chunks.
GF16 = gf(16)
