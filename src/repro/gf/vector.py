"""Vectorised GF(2^w) operations on numpy buffers.

These are the hot-path kernels used by erasure encoding/decoding: they
operate element-wise on whole chunk buffers (numpy arrays of ``uint8``
for w <= 8 or ``uint16`` for w == 16).

Two table schemes back the kernels:

- **w <= 8**: one 256-entry product table per constant (``t[x] = c*x``),
  gathered with ``np.take``.  For multi-output kernels up to four
  constants' tables are *packed into one uint32 table* so a single
  gather produces four products at once (the byte lanes of the packed
  accumulator are the output rows).
- **w == 16**: *split low/high-nibble tables* — ``lo[x] = c * x`` for
  the low byte and ``hi[x] = c * (x << 8)`` for the high byte, 256
  entries each (1 KiB per constant instead of the 128 KiB a full
  2^16-entry table would cost).  ``c * v == lo[v & 0xFF] ^ hi[v >> 8]``.

The central batched primitive is :func:`batch_dot`: apply an ``r x n``
coefficient matrix to ``n`` input buffers in one fused pass with
in-place XOR accumulation and reusable scratch buffers (no per-row
temporaries).  :func:`matrix_apply` (the encode/decode kernel) and
:func:`dot_rows` (the paper's Equation-7 partial-decoding primitive)
are thin wrappers over it.

All product-table caches are bounded LRUs (:class:`repro.cache.BoundedCache`).
The module-level scratch buffers make these kernels **not thread-safe**;
use separate processes for parallelism (the experiment driver does).
"""

from __future__ import annotations

import numpy as np

from repro.cache import BoundedCache
from repro.errors import FieldError
from repro.gf.field import GaloisField
from repro.obs import metrics as _metrics

__all__ = [
    "buffer_dtype",
    "as_field_buffer",
    "xor_into",
    "mul_scalar",
    "axpy",
    "scale_inplace",
    "dot_rows",
    "matrix_apply",
    "batch_dot",
]

#: Per-(w, c) product tables for w <= 8: 256 entries, 256 B each.
_MUL_TABLE_CACHE = BoundedCache(maxsize=1024, name="gf.mul_table")
#: Per-(w, c) split-nibble table pairs for w == 16: 2 x 256 uint16 = 1 KiB each.
_NIBBLE_TABLE_CACHE = BoundedCache(maxsize=1024, name="gf.nibble_table")
#: Per-(w, c1, c2) fused pair tables for w <= 8: 64 KiB each, so <= 4 MiB total.
_PAIR_TABLE_CACHE = BoundedCache(maxsize=64, name="gf.pair_table")


def _count_kernel(kernel: str, nbytes: int) -> None:
    """Record one kernel dispatch when a telemetry scope is active.

    The disabled path is the caller's ``_metrics.CURRENT is None``
    check — one module-attribute load, bounded <5% on the kernel bench.
    """
    reg = _metrics.CURRENT
    if reg is None:  # pragma: no cover - callers already check
        return
    reg.counter("gf.kernel.dispatches").inc(kernel=kernel)
    reg.counter("gf.kernel.bytes").inc(nbytes, kernel=kernel)

_LITTLE_ENDIAN = bool(np.little_endian)

# Reusable scratch buffers, keyed by (dtype, slot); each holds the
# largest size seen so far.  Bounded by a few chunk-sized arrays.
_SCRATCH: dict[tuple[str, int], np.ndarray] = {}


def _scratch(dtype: np.dtype, n: int, slot: int = 0) -> np.ndarray:
    key = (np.dtype(dtype).str, slot)
    buf = _SCRATCH.get(key)
    if buf is None or buf.size < n:
        buf = np.empty(n, dtype=dtype)
        _SCRATCH[key] = buf
    return buf[:n]


def buffer_dtype(field: GaloisField) -> np.dtype:
    """Numpy dtype for buffers over ``field``."""
    return field.tables.dtype


def as_field_buffer(
    field: GaloisField,
    data: bytes | bytearray | np.ndarray,
    copy: bool = False,
) -> np.ndarray:
    """View/convert ``data`` as a 1-D numpy buffer of field elements.

    By default bytes-like inputs are reinterpreted **zero-copy** as a
    read-only view — the common case (encode/decode inputs) never
    mutates its buffers.  Pass ``copy=True`` to get a private writable
    copy instead.  For GF(2^16) the byte length must be even.

    Raises:
        FieldError: if an ndarray input has the wrong dtype, or a bytes
            input has odd length for w=16.
    """
    dtype = buffer_dtype(field)
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            raise FieldError(
                f"buffer dtype {data.dtype} does not match GF(2^{field.w}) ({dtype})"
            )
        flat = data.reshape(-1)
        return flat.copy() if copy else flat
    raw = np.frombuffer(data, dtype=np.uint8)
    if dtype != np.uint8:
        if raw.size % 2:
            raise FieldError("GF(2^16) buffers require an even number of bytes")
        raw = raw.view(np.uint16)
    if copy:
        return raw.copy()
    view = raw[:]
    view.setflags(write=False)
    return view


def _mul_table(field: GaloisField, c: int) -> np.ndarray:
    """Full product table ``t[x] = c * x`` for w <= 8 constants (cached)."""
    key = (field.w, c)
    table = _MUL_TABLE_CACHE.get(key)
    if table is None:
        t = field.tables
        table = np.zeros(t.order, dtype=t.dtype)
        if c != 0:
            logs = t.log[1:].astype(np.int64) + int(t.log[c])
            table[1:] = t.exp[logs]
        table.setflags(write=False)
        _MUL_TABLE_CACHE.put(key, table)
    return table


def _nibble_tables(field: GaloisField, c: int) -> tuple[np.ndarray, np.ndarray]:
    """Split-nibble tables ``(lo, hi)`` for a GF(2^16) constant (cached).

    ``lo[x] = c * x`` and ``hi[x] = c * (x << 8)`` for ``x`` in 0..255,
    so ``c * v == lo[v & 0xFF] ^ hi[v >> 8]`` by linearity of the field
    multiplication over XOR.  1 KiB per constant instead of the 128 KiB
    a full 2^16-entry table would take.
    """
    key = (field.w, c)
    tables = _NIBBLE_TABLE_CACHE.get(key)
    if tables is None:
        t = field.tables
        lo = np.zeros(256, dtype=t.dtype)
        hi = np.zeros(256, dtype=t.dtype)
        if c != 0:
            log_c = int(t.log[c])
            low_vals = np.arange(1, 256)
            lo[1:] = t.exp[t.log[low_vals] + log_c]
            high_vals = low_vals << 8
            hi[1:] = t.exp[t.log[high_vals] + log_c]
        lo.setflags(write=False)
        hi.setflags(write=False)
        tables = (lo, hi)
        _NIBBLE_TABLE_CACHE.put(key, tables)
    return tables


def _pair_table(field: GaloisField, c1: int, c2: int) -> np.ndarray:
    """Fused table ``P[x1 * 256 + x2] = c1*x1 ^ c2*x2`` for w <= 8 (cached).

    Lets a two-term GF multiply-accumulate run as a *single* gather over
    a combined 16-bit index — the dominant cost of the repair kernel is
    gathers, so halving their count nearly halves its runtime.
    """
    key = (field.w, c1, c2)
    table = _PAIR_TABLE_CACHE.get(key)
    if table is None:
        t1 = _mul_table(field, c1)
        t2 = _mul_table(field, c2)
        table = (t1[:, None] ^ t2[None, :]).reshape(-1)
        table.setflags(write=False)
        _PAIR_TABLE_CACHE.put(key, table)
    return table


def xor_into(dst: np.ndarray, src: np.ndarray) -> None:
    """``dst ^= src`` element-wise (field addition), in place."""
    np.bitwise_xor(dst, src, out=dst)


def mul_scalar(field: GaloisField, c: int, buf: np.ndarray) -> np.ndarray:
    """Return a new buffer equal to ``c * buf`` element-wise."""
    field.check(c)
    if _metrics.CURRENT is not None:
        _count_kernel("mul_scalar", buf.size * buf.itemsize)
    if c == 0:
        return np.zeros_like(buf)
    if c == 1:
        return buf.copy()
    if field.w <= 8:
        return np.take(_mul_table(field, c), buf)
    lo, hi = _nibble_tables(field, c)
    out = lo[buf & 0xFF]
    out ^= hi[buf >> 8]
    return out


def scale_inplace(field: GaloisField, c: int, buf: np.ndarray) -> None:
    """``buf *= c`` element-wise, in place."""
    field.check(c)
    if _metrics.CURRENT is not None:
        _count_kernel("scale_inplace", buf.size * buf.itemsize)
    if c == 1:
        return
    if c == 0:
        buf[:] = 0
        return
    if field.w <= 8:
        np.take(_mul_table(field, c), buf, out=buf)
        return
    lo, hi = _nibble_tables(field, c)
    high = _scratch(buf.dtype, buf.size, slot=1)
    np.right_shift(buf, 8, out=high)
    np.bitwise_and(buf, 0xFF, out=buf)
    np.take(lo, buf, out=buf)
    buf ^= hi[high]


def axpy(field: GaloisField, c: int, x: np.ndarray, y: np.ndarray) -> None:
    """``y ^= c * x`` — the fused multiply-accumulate of GF coding loops."""
    field.check(c)
    if _metrics.CURRENT is not None:
        _count_kernel("axpy", x.size * x.itemsize)
    if c == 0:
        return
    if c == 1:
        np.bitwise_xor(y, x, out=y)
        return
    s = _scratch(y.dtype, y.size)
    if field.w <= 8:
        np.take(_mul_table(field, c), x, out=s)
    else:
        lo, hi = _nibble_tables(field, c)
        np.take(lo, x & 0xFF, out=s)
        s ^= hi[x >> 8]
    np.bitwise_xor(y, s, out=y)


def _unpack_lane(acc: np.ndarray, lane: int, lane_size: int) -> np.ndarray:
    """One output row from a packed accumulator, as a strided view."""
    lanes = acc.itemsize // lane_size
    lane_dtype = np.uint8 if lane_size == 1 else np.uint16
    per_elem = acc.view(lane_dtype).reshape(-1, lanes)
    return per_elem[:, lane if _LITTLE_ENDIAN else lanes - 1 - lane]


def _batch_dot_u8(
    field: GaloisField, rows: np.ndarray, bufs, out: np.ndarray
) -> None:
    """w <= 8 kernel: packed byte lanes for multi-row, pair tables for 1-row."""
    r, n = rows.shape
    size = out.shape[1]
    for g0 in range(0, r, 4):
        lanes = min(4, r - g0)
        if lanes == 1:
            _dot_single_u8(field, rows[g0], bufs, out[g0])
            continue
        pack_dtype = np.uint16 if lanes == 2 else np.uint32
        acc = _scratch(pack_dtype, size, slot=0)
        acc[:] = 0
        gathered = _scratch(pack_dtype, size, slot=1)
        for j in range(n):
            cs = [int(c) for c in rows[g0 : g0 + lanes, j]]
            if not any(cs):
                continue
            packed = np.zeros(field.order, dtype=pack_dtype)
            for lane, c in enumerate(cs):
                if c:
                    packed |= _mul_table(field, c).astype(pack_dtype) << (8 * lane)
            np.take(packed, bufs[j], out=gathered)
            acc ^= gathered
        for lane in range(lanes):
            out[g0 + lane][:] = _unpack_lane(acc, lane, 1)


def _dot_single_u8(
    field: GaloisField, coeffs: np.ndarray, bufs, out_row: np.ndarray
) -> None:
    """Single-output w <= 8 dot: fused pair-table gathers.

    Consecutive nonzero terms are consumed two at a time through
    :func:`_pair_table`, so ``k`` inputs cost ``ceil(k/2)`` gathers
    instead of ``k``.
    """
    size = out_row.shape[0]
    terms = [(int(c), bufs[j]) for j, c in enumerate(coeffs) if c]
    out_row[:] = 0
    idx = _scratch(np.uint16, size, slot=2)
    s = _scratch(np.uint8, size, slot=3)
    i = 0
    stride = np.uint16(field.order)
    while i + 1 < len(terms):
        (c1, x1), (c2, x2) = terms[i], terms[i + 1]
        np.multiply(x1, stride, out=idx)
        np.bitwise_or(idx, x2, out=idx)
        np.take(_pair_table(field, c1, c2), idx, out=s)
        out_row ^= s
        i += 2
    if i < len(terms):
        c, x = terms[i]
        if c == 1:
            out_row ^= x
        else:
            np.take(_mul_table(field, c), x, out=s)
            out_row ^= s


def _batch_dot_u16(
    field: GaloisField, rows: np.ndarray, bufs, out: np.ndarray
) -> None:
    """w == 16 kernel: split-nibble gathers, two rows packed per uint32."""
    r, n = rows.shape
    size = out.shape[1]
    # Low/high byte indices are shared by every output row group.
    lo_idx = [buf & 0xFF for buf in bufs]
    hi_idx = [buf >> 8 for buf in bufs]
    for g0 in range(0, r, 2):
        lanes = min(2, r - g0)
        pack_dtype = np.uint16 if lanes == 1 else np.uint32
        acc = _scratch(pack_dtype, size, slot=0)
        acc[:] = 0
        gathered = _scratch(pack_dtype, size, slot=1)
        for j in range(n):
            cs = [int(c) for c in rows[g0 : g0 + lanes, j]]
            if not any(cs):
                continue
            packed_lo = np.zeros(256, dtype=pack_dtype)
            packed_hi = np.zeros(256, dtype=pack_dtype)
            for lane, c in enumerate(cs):
                if c:
                    lo, hi = _nibble_tables(field, c)
                    packed_lo |= lo.astype(pack_dtype) << (16 * lane)
                    packed_hi |= hi.astype(pack_dtype) << (16 * lane)
            np.take(packed_lo, lo_idx[j], out=gathered)
            acc ^= gathered
            np.take(packed_hi, hi_idx[j], out=gathered)
            acc ^= gathered
        if lanes == 1:
            out[g0][:] = acc
        else:
            for lane in range(lanes):
                out[g0 + lane][:] = _unpack_lane(acc, lane, 2)


def batch_dot(
    field: GaloisField,
    rows: np.ndarray,
    bufs,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Apply an ``r x n`` coefficient matrix to ``n`` buffers, batched.

    This is the fused coding kernel: all ``r`` linear combinations
    ``out[i] = sum_j rows[i, j] * bufs[j]`` are produced in one pass
    with XOR accumulation into reusable scratch buffers.  ``bufs`` may
    be a list of 1-D buffers or an ``(n, L)`` matrix (its rows are the
    buffers — no copy either way).

    Args:
        field: the coefficient field.
        rows: ``(r, n)`` coefficient matrix.
        bufs: ``n`` equal-length 1-D buffers of the field's dtype.
        out: optional preallocated ``(r, L)`` output (zeroed and filled).

    Returns:
        ``(r, L)`` array; row ``i`` is the ``i``-th combination.

    Raises:
        FieldError: on shape/coefficient-range mismatches.
    """
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise FieldError(f"coefficient matrix must be 2-D, got shape {rows.shape}")
    r, n = rows.shape
    if n != len(bufs):
        raise FieldError(
            f"matrix shape {rows.shape} incompatible with {len(bufs)} buffers"
        )
    if n == 0:
        raise FieldError("batch_dot requires at least one buffer")
    if rows.size and (int(rows.min()) < 0 or int(rows.max()) >= field.order):
        raise FieldError(f"coefficients outside GF(2^{field.w})")
    size = bufs[0].shape[0]
    dtype = buffer_dtype(field)
    if out is None:
        out = np.empty((r, size), dtype=dtype)
    elif out.shape != (r, size) or out.dtype != dtype:
        raise FieldError(
            f"out has shape {out.shape}/{out.dtype}, need {(r, size)}/{dtype}"
        )
    if r == 0:
        return out
    if field.w <= 8:
        _batch_dot_u8(field, rows, bufs, out)
    else:
        _batch_dot_u16(field, rows, bufs, out)
    if _metrics.CURRENT is not None:
        kernel = "batch_dot_u8" if field.w <= 8 else "batch_dot_u16"
        _count_kernel(kernel, n * size * out.itemsize)
    return out


def dot_rows(field: GaloisField, coeffs: list[int] | np.ndarray, bufs: list[np.ndarray]) -> np.ndarray:
    """Linear combination ``sum_i coeffs[i] * bufs[i]`` over the field.

    This is exactly the "partial decoding" primitive of the paper
    (Equation 7): a rack-local delegate combines its retrieved chunks
    with the repair-vector coefficients assigned to them.

    Raises:
        FieldError: if lengths mismatch or no buffers are given.
    """
    if len(coeffs) != len(bufs):
        raise FieldError("coefficient/buffer count mismatch")
    if not len(bufs):
        raise FieldError("dot_rows requires at least one buffer")
    return batch_dot(field, np.asarray(coeffs).reshape(1, -1), bufs)[0]


def matrix_apply(field: GaloisField, rows: np.ndarray, bufs: list[np.ndarray]) -> list[np.ndarray]:
    """Apply an ``r x n`` coefficient matrix to ``n`` buffers.

    Returns ``r`` output buffers; row ``i`` of the result is
    ``sum_j rows[i, j] * bufs[j]``.  This is the encode kernel: ``rows``
    is the parity part of the generator matrix.  Delegates to the
    batched :func:`batch_dot` kernel.
    """
    rows = np.asarray(rows)
    if rows.ndim != 2 or rows.shape[1] != len(bufs):
        raise FieldError(
            f"matrix shape {rows.shape} incompatible with {len(bufs)} buffers"
        )
    result = batch_dot(field, rows, list(bufs))
    return [result[i] for i in range(result.shape[0])]
