"""Vectorised GF(2^w) operations on numpy buffers.

These are the hot-path kernels used by erasure encoding/decoding: they
operate element-wise on whole chunk buffers (numpy arrays of ``uint8``
for w <= 8 or ``uint16`` for w == 16).

The central primitive is :func:`mul_scalar` — multiply every element of a
buffer by a field constant — implemented with a single gather through a
per-constant product table (built lazily and cached), which is how
high-performance CPU erasure-coding libraries do it.  ``axpy`` and
``dot_rows`` compose it with XOR accumulation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FieldError
from repro.gf.field import GaloisField

__all__ = [
    "buffer_dtype",
    "as_field_buffer",
    "xor_into",
    "mul_scalar",
    "axpy",
    "scale_inplace",
    "dot_rows",
    "matrix_apply",
]

# Cache of per-(w, constant) multiplication tables: table[x] == c * x.
_MUL_TABLE_CACHE: dict[tuple[int, int], np.ndarray] = {}


def buffer_dtype(field: GaloisField) -> np.dtype:
    """Numpy dtype for buffers over ``field``."""
    return field.tables.dtype


def as_field_buffer(field: GaloisField, data: bytes | bytearray | np.ndarray) -> np.ndarray:
    """View/convert ``data`` as a 1-D numpy buffer of field elements.

    Bytes-like inputs are reinterpreted (not copied when possible).  For
    GF(2^16) the byte length must be even.

    Raises:
        FieldError: if an ndarray input has the wrong dtype or contains
            out-of-range values, or a bytes input has odd length for w=16.
    """
    dtype = buffer_dtype(field)
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            raise FieldError(
                f"buffer dtype {data.dtype} does not match GF(2^{field.w}) ({dtype})"
            )
        return data.reshape(-1)
    raw = np.frombuffer(bytes(data), dtype=np.uint8)
    if dtype == np.uint8:
        return raw.copy()
    if raw.size % 2:
        raise FieldError("GF(2^16) buffers require an even number of bytes")
    return raw.view(np.uint16).copy()


def _mul_table(field: GaloisField, c: int) -> np.ndarray:
    """Full product table ``t[x] = c * x`` for a constant ``c`` (cached)."""
    key = (field.w, c)
    table = _MUL_TABLE_CACHE.get(key)
    if table is None:
        t = field.tables
        table = np.zeros(t.order, dtype=t.dtype)
        if c != 0:
            logs = t.log[1:].astype(np.int64) + int(t.log[c])
            table[1:] = t.exp[logs]
        table.setflags(write=False)
        _MUL_TABLE_CACHE[key] = table
    return table


def xor_into(dst: np.ndarray, src: np.ndarray) -> None:
    """``dst ^= src`` element-wise (field addition), in place."""
    np.bitwise_xor(dst, src, out=dst)


def mul_scalar(field: GaloisField, c: int, buf: np.ndarray) -> np.ndarray:
    """Return a new buffer equal to ``c * buf`` element-wise."""
    field.check(c)
    if c == 0:
        return np.zeros_like(buf)
    if c == 1:
        return buf.copy()
    return _mul_table(field, c)[buf]


def scale_inplace(field: GaloisField, c: int, buf: np.ndarray) -> None:
    """``buf *= c`` element-wise, in place."""
    field.check(c)
    if c == 1:
        return
    if c == 0:
        buf[:] = 0
        return
    np.take(_mul_table(field, c), buf, out=buf)


def axpy(field: GaloisField, c: int, x: np.ndarray, y: np.ndarray) -> None:
    """``y ^= c * x`` — the fused multiply-accumulate of GF coding loops."""
    field.check(c)
    if c == 0:
        return
    if c == 1:
        np.bitwise_xor(y, x, out=y)
        return
    np.bitwise_xor(y, _mul_table(field, c)[x], out=y)


def dot_rows(field: GaloisField, coeffs: list[int] | np.ndarray, bufs: list[np.ndarray]) -> np.ndarray:
    """Linear combination ``sum_i coeffs[i] * bufs[i]`` over the field.

    This is exactly the "partial decoding" primitive of the paper
    (Equation 7): a rack-local delegate combines its retrieved chunks
    with the repair-vector coefficients assigned to them.

    Raises:
        FieldError: if lengths mismatch or no buffers are given.
    """
    if len(coeffs) != len(bufs):
        raise FieldError("coefficient/buffer count mismatch")
    if not bufs:
        raise FieldError("dot_rows requires at least one buffer")
    out = np.zeros_like(bufs[0])
    for c, b in zip(coeffs, bufs):
        axpy(field, int(c), b, out)
    return out


def matrix_apply(field: GaloisField, rows: np.ndarray, bufs: list[np.ndarray]) -> list[np.ndarray]:
    """Apply an ``r x n`` coefficient matrix to ``n`` buffers.

    Returns ``r`` output buffers; row ``i`` of the result is
    ``sum_j rows[i, j] * bufs[j]``.  This is the encode kernel: ``rows``
    is the parity part of the generator matrix.
    """
    if rows.ndim != 2 or rows.shape[1] != len(bufs):
        raise FieldError(
            f"matrix shape {rows.shape} incompatible with {len(bufs)} buffers"
        )
    return [dot_rows(field, rows[i, :].tolist(), bufs) for i in range(rows.shape[0])]
