"""Univariate polynomials over GF(2^w).

Not on the hot path of CAR itself, but part of a complete finite-field
substrate: polynomial evaluation underlies the classical (Reed & Solomon
1960) view of RS codes, and the test suite uses it to cross-check the
matrix-based encoder — evaluating the message polynomial at distinct
points must agree with a Vandermonde-matrix encode.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import DivisionByZeroError, FieldError
from repro.gf.field import GaloisField

__all__ = ["Polynomial"]


class Polynomial:
    """A polynomial with coefficients in GF(2^w).

    Coefficients are stored lowest-degree first and normalised (no
    trailing zeros); the zero polynomial has an empty coefficient list
    and degree ``-1``.
    """

    __slots__ = ("field", "coeffs")

    def __init__(self, field: GaloisField, coeffs: Iterable[int] = ()) -> None:
        self.field = field
        cs = [field.check(int(c)) for c in coeffs]
        while cs and cs[-1] == 0:
            cs.pop()
        self.coeffs: tuple[int, ...] = tuple(cs)

    # -- constructors ---------------------------------------------------

    @classmethod
    def zero(cls, field: GaloisField) -> "Polynomial":
        """The zero polynomial."""
        return cls(field)

    @classmethod
    def one(cls, field: GaloisField) -> "Polynomial":
        """The constant polynomial 1."""
        return cls(field, (1,))

    @classmethod
    def monomial(cls, field: GaloisField, degree: int, coeff: int = 1) -> "Polynomial":
        """``coeff * x^degree``."""
        if degree < 0:
            raise FieldError("monomial degree must be non-negative")
        return cls(field, [0] * degree + [coeff])

    @classmethod
    def interpolate(
        cls, field: GaloisField, points: Sequence[tuple[int, int]]
    ) -> "Polynomial":
        """Lagrange interpolation through ``(x, y)`` points with distinct x."""
        xs = [x for x, _ in points]
        if len(set(xs)) != len(xs):
            raise FieldError("interpolation points must have distinct x values")
        result = cls.zero(field)
        for i, (xi, yi) in enumerate(points):
            num = cls.one(field)
            denom = 1
            for j, (xj, _) in enumerate(points):
                if i == j:
                    continue
                num = num * cls(field, (xj, 1))  # (x - xj) == (x + xj) in char 2
                denom = field.mul(denom, field.add(xi, xj))
            scale = field.div(yi, denom)
            result = result + num.scale(scale)
        return result

    # -- basic properties -------------------------------------------------

    @property
    def degree(self) -> int:
        """Degree of the polynomial; ``-1`` for the zero polynomial."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        """True iff this is the zero polynomial."""
        return not self.coeffs

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Polynomial)
            and other.field == self.field
            and other.coeffs == self.coeffs
        )

    def __hash__(self) -> int:
        return hash((self.field, self.coeffs))

    def __repr__(self) -> str:
        if self.is_zero():
            return f"Polynomial(GF(2^{self.field.w}), 0)"
        terms = [
            f"{c}*x^{i}" if i else str(c)
            for i, c in enumerate(self.coeffs)
            if c
        ]
        return f"Polynomial(GF(2^{self.field.w}), {' + '.join(terms)})"

    # -- arithmetic -------------------------------------------------------

    def _check_field(self, other: "Polynomial") -> None:
        if other.field != self.field:
            raise FieldError("polynomials are over different fields")

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check_field(other)
        n = max(len(self.coeffs), len(other.coeffs))
        a = list(self.coeffs) + [0] * (n - len(self.coeffs))
        b = list(other.coeffs) + [0] * (n - len(other.coeffs))
        return Polynomial(self.field, [x ^ y for x, y in zip(a, b)])

    # Characteristic 2: subtraction is addition.
    __sub__ = __add__

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        self._check_field(other)
        if self.is_zero() or other.is_zero():
            return Polynomial.zero(self.field)
        out = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        f = self.field
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                out[i + j] ^= f.mul(a, b)
        return Polynomial(self.field, out)

    def scale(self, c: int) -> "Polynomial":
        """Multiply every coefficient by the field constant ``c``."""
        f = self.field
        return Polynomial(f, [f.mul(c, a) for a in self.coeffs])

    def divmod(self, divisor: "Polynomial") -> tuple["Polynomial", "Polynomial"]:
        """Polynomial long division: return ``(quotient, remainder)``."""
        self._check_field(divisor)
        if divisor.is_zero():
            raise DivisionByZeroError("polynomial division by zero")
        f = self.field
        rem = list(self.coeffs)
        dq = divisor.degree
        lead_inv = f.inv(divisor.coeffs[-1])
        quot = [0] * max(0, len(rem) - dq)
        for i in range(len(rem) - dq - 1, -1, -1):
            coef = f.mul(rem[i + dq], lead_inv)
            quot[i] = coef
            if coef:
                for j, dc in enumerate(divisor.coeffs):
                    rem[i + j] ^= f.mul(coef, dc)
        return Polynomial(f, quot), Polynomial(f, rem)

    def __floordiv__(self, other: "Polynomial") -> "Polynomial":
        return self.divmod(other)[0]

    def __mod__(self, other: "Polynomial") -> "Polynomial":
        return self.divmod(other)[1]

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, x: int) -> int:
        """Evaluate at the field element ``x`` (Horner's rule)."""
        f = self.field
        f.check(x)
        acc = 0
        for c in reversed(self.coeffs):
            acc = f.mul(acc, x) ^ c
        return acc

    def evaluate_many(self, xs: Sequence[int]) -> list[int]:
        """Evaluate at each of several points."""
        return [self.evaluate(x) for x in xs]

    def derivative(self) -> "Polynomial":
        """Formal derivative; in characteristic 2 even-degree terms vanish."""
        # d/dx sum c_i x^i = sum i*c_i x^{i-1}, and i*c_i is c_i XORed i
        # times with itself, i.e. c_i when i is odd and 0 when i is even.
        derived = [
            self.coeffs[i] if i % 2 else 0 for i in range(1, len(self.coeffs))
        ]
        return Polynomial(self.field, derived)
