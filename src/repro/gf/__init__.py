"""Galois-field arithmetic substrate for GF(2^w), w in {4, 8, 16}.

Public surface:

- :class:`~repro.gf.field.GaloisField` with singletons :data:`GF4`,
  :data:`GF8`, :data:`GF16` and the :func:`gf` factory — scalar ops.
- :mod:`repro.gf.vector` — numpy-vectorised chunk-buffer kernels
  (``mul_scalar``, ``axpy``, ``dot_rows``, ``matrix_apply``).
- :class:`~repro.gf.polynomial.Polynomial` — polynomials over the field.
"""

from repro.gf.field import GF4, GF8, GF16, GaloisField, gf
from repro.gf.polynomial import Polynomial
from repro.gf.tables import FieldTables, get_tables, supported_widths
from repro.gf.vector import (
    as_field_buffer,
    axpy,
    buffer_dtype,
    dot_rows,
    matrix_apply,
    mul_scalar,
    scale_inplace,
    xor_into,
)

__all__ = [
    "GaloisField",
    "GF4",
    "GF8",
    "GF16",
    "gf",
    "Polynomial",
    "FieldTables",
    "get_tables",
    "supported_widths",
    "as_field_buffer",
    "axpy",
    "buffer_dtype",
    "dot_rows",
    "matrix_apply",
    "mul_scalar",
    "scale_inplace",
    "xor_into",
]
