"""Discrete log / antilog table generation for GF(2^w).

The fields GF(2^4), GF(2^8) and GF(2^16) are realised as polynomial rings
over GF(2) modulo a fixed primitive polynomial (the same polynomials used
by Jerasure 1.2, the library the paper's testbed used, so encoded bytes
are interoperable):

=====  ======================  =======================
w      primitive polynomial    hex
=====  ======================  =======================
4      x^4 + x + 1             ``0x13``
8      x^8 + x^4 + x^3 + x^2 + 1   ``0x11d``
16     x^16 + x^12 + x^3 + x + 1   ``0x1100b``
=====  ======================  =======================

Because the polynomials are primitive, ``x`` (the element ``2``) generates
the multiplicative group, and multiplication reduces to an addition of
discrete logarithms modulo ``2^w - 1``.  Tables are built once per width
and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PRIMITIVE_POLYNOMIALS", "FieldTables", "get_tables", "supported_widths"]

#: Primitive polynomial (with the leading term included) per field width.
PRIMITIVE_POLYNOMIALS: dict[int, int] = {
    4: 0x13,
    8: 0x11D,
    16: 0x1100B,
}


def supported_widths() -> tuple[int, ...]:
    """Return the field widths this library supports, ascending."""
    return tuple(sorted(PRIMITIVE_POLYNOMIALS))


def _dtype_for_width(w: int) -> np.dtype:
    """Smallest unsigned integer dtype that holds a GF(2^w) element."""
    return np.dtype(np.uint8) if w <= 8 else np.dtype(np.uint16)


@dataclass(frozen=True)
class FieldTables:
    """Precomputed discrete log / antilog tables for GF(2^w).

    Attributes:
        w: Field width in bits; the field has ``2^w`` elements.
        prim_poly: Primitive polynomial used for reduction.
        exp: ``exp[i] == g^i`` for the generator ``g = 2``.  The table is
            doubled in length (``2 * (2^w - 1)`` entries) so that
            ``exp[log[a] + log[b]]`` never needs an explicit modulo.
        log: ``log[a]`` is the discrete log of ``a``; ``log[0]`` is a
            sentinel (``2^w - 1``) and must never be dereferenced for the
            zero element.
        inv: Multiplicative inverse table; ``inv[0]`` is 0 as a sentinel.
    """

    w: int
    prim_poly: int
    exp: np.ndarray = field(repr=False)
    log: np.ndarray = field(repr=False)
    inv: np.ndarray = field(repr=False)

    @property
    def order(self) -> int:
        """Number of elements in the field (``2^w``)."""
        return 1 << self.w

    @property
    def group_order(self) -> int:
        """Order of the multiplicative group (``2^w - 1``)."""
        return (1 << self.w) - 1

    @property
    def dtype(self) -> np.dtype:
        """Numpy dtype used for element storage."""
        return _dtype_for_width(self.w)


def _build_tables(w: int) -> FieldTables:
    if w not in PRIMITIVE_POLYNOMIALS:
        raise ConfigurationError(
            f"unsupported field width w={w}; supported: {supported_widths()}"
        )
    prim = PRIMITIVE_POLYNOMIALS[w]
    order = 1 << w
    group = order - 1
    dtype = _dtype_for_width(w)

    exp = np.zeros(2 * group, dtype=dtype)
    log = np.zeros(order, dtype=np.int32)

    x = 1
    for i in range(group):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & order:
            x ^= prim
    # Mirror the table so exp[log[a] + log[b]] works without a modulo.
    exp[group : 2 * group] = exp[:group]
    log[0] = group  # sentinel; never valid as a log of a field element

    inv = np.zeros(order, dtype=dtype)
    # a^{-1} = g^{group - log a}
    nonzero = np.arange(1, order)
    inv[1:] = exp[(group - log[nonzero]) % group]

    tables = FieldTables(w=w, prim_poly=prim, exp=exp, log=log, inv=inv)
    exp.setflags(write=False)
    log.setflags(write=False)
    inv.setflags(write=False)
    return tables


_CACHE: dict[int, FieldTables] = {}


def get_tables(w: int) -> FieldTables:
    """Return (building and caching on first use) the tables for GF(2^w)."""
    if w not in _CACHE:
        _CACHE[w] = _build_tables(w)
    return _CACHE[w]
