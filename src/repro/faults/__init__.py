"""Fault injection and degraded-mode recovery.

The paper (and the seed reproduction) only ever exercises recovery on a
*healthy* remainder of the cluster.  This package makes the repair
itself survivable:

- :mod:`repro.faults.events` — fault/action vocabulary, the structured
  :class:`FaultLog`, and the typed :class:`RecoveryAbort`;
- :mod:`repro.faults.injector` — deterministic, seedable
  :class:`FaultInjector` polled at named pipeline stages;
- :mod:`repro.faults.backoff` — capped exponential retry schedule;
- :mod:`repro.faults.robust` — :class:`RobustExecutor`, the
  aggregated → re-planned → direct → abort degradation ladder;
- :mod:`repro.faults.timeline` — :class:`FaultTimeline`, threading
  stalls and retransmissions into the timing simulator.
"""

from repro.errors import CoordinatorCrashError, IntegrityError
from repro.faults.backoff import BackoffPolicy
from repro.faults.events import (
    ActionKind,
    FaultEvent,
    FaultKind,
    FaultLog,
    FaultSpec,
    InjectedCrashError,
    RecoveryAbort,
    RecoveryAction,
)
from repro.faults.injector import FaultInjector
from repro.faults.robust import (
    RobustExecutionResult,
    RobustExecutor,
    recover_with_faults,
)
from repro.faults.timeline import FaultTimeline
from repro.recovery.executor import PipelineStage

__all__ = [
    "ActionKind",
    "BackoffPolicy",
    "CoordinatorCrashError",
    "IntegrityError",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultLog",
    "FaultSpec",
    "FaultTimeline",
    "InjectedCrashError",
    "PipelineStage",
    "RecoveryAbort",
    "RecoveryAction",
    "RobustExecutionResult",
    "RobustExecutor",
    "recover_with_faults",
]
