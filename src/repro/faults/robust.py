"""Degraded-mode recovery: retries, re-planning, and graceful fallback.

:class:`RobustExecutor` wraps the byte-exact
:class:`~repro.recovery.executor.PlanExecutor` with the failure
handling a real clustered file system needs when the repair itself is
not safe from failures:

- **transient faults** (dropped flows) are retried with capped
  exponential backoff; **stalled disks** are waited out — both
  accounted as simulated wall-clock, never real sleeps;
- **permanent faults** (helper/delegate crashes, or transients that
  exhaust their retry budget) void the current plan for the not-yet
  repaired stripes: the selector and planner are re-invoked with the
  dead nodes excluded, so the re-plan is Theorem-1 minimal over the
  *surviving* racks;
- after ``max_replans`` aggregated re-plans the executor **degrades**
  to direct RR-style recovery (any ``k`` survivors shipped raw), the
  last rung before a typed :class:`~repro.faults.events.RecoveryAbort`.

The degradation ladder is therefore::

    aggregated (CAR)  ->  re-planned aggregated  ->  direct  ->  abort

Every fault and every response is recorded in a
:class:`~repro.faults.events.FaultLog`, in execution order, and the
whole run is deterministic for a fixed injector seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.failure import degraded_view
from repro.cluster.state import ClusterState, FailureEvent
from repro.errors import CoordinatorCrashError, NoValidSolutionError
from repro.faults.backoff import BackoffPolicy
from repro.faults.events import (
    ActionKind,
    FaultEvent,
    FaultKind,
    FaultLog,
    InjectedCrashError,
    RecoveryAbort,
    RecoveryAction,
)
from repro.faults.injector import FaultInjector
from repro.faults.timeline import FaultTimeline
from repro.obs import metrics as _metrics
from repro.obs.tracer import NullTracer, Tracer
from repro.recovery.balancer import GreedyLoadBalancer
from repro.recovery.executor import ExecutionResult, PipelineStage, PlanExecutor
from repro.recovery.planner import RecoveryPlan, plan_recovery
from repro.recovery.selector import CarSelector
from repro.recovery.solution import MultiStripeSolution, PerStripeSolution

__all__ = ["RobustExecutionResult", "RobustExecutor", "recover_with_faults"]

#: Kinds the checkpoint hook polls for.  In-flight corruption belongs to
#: the transmission hook (:meth:`RobustExecutor._transmit`) — splitting
#: the polls keeps either from draining the other's fire budgets.
_CHECKPOINT_KINDS = frozenset(FaultKind) - {FaultKind.IN_FLIGHT_CORRUPT}
_TRANSMIT_KINDS = frozenset({FaultKind.IN_FLIGHT_CORRUPT})


@dataclass
class RobustExecutionResult:
    """Outcome of a fault-tolerant recovery run.

    Attributes:
        result: merged byte-exact execution result of every stripe that
            completed (each stripe's bytes come from its *successful*
            attempt only).
        log: ordered faults + responses.
        dead_nodes: helpers that crashed (or were escalated) mid-repair.
        replans: aggregated re-plans performed.
        degraded_to_direct: whether the ladder reached direct recovery.
        rounds: execution rounds (1 = no crash interrupted anything).
        wasted_cross_rack_bytes / wasted_intra_rack_bytes: traffic of
            attempts that a crash voided (consumed bandwidth that bought
            no stripe).
        backoff_seconds: simulated wait spent on transfer retries.
        stall_seconds: simulated wait spent on disk stalls.
        final_solution / final_plan: what the last round executed —
            feed these to the timing simulator together with
            :attr:`timeline`.
    """

    result: ExecutionResult
    log: FaultLog
    dead_nodes: frozenset[int]
    replans: int
    degraded_to_direct: bool
    rounds: int
    wasted_cross_rack_bytes: int
    wasted_intra_rack_bytes: int
    backoff_seconds: float
    stall_seconds: float
    final_solution: MultiStripeSolution
    final_plan: RecoveryPlan

    @property
    def verified(self) -> bool:
        """True iff every stripe reconstructed byte-exactly."""
        return self.result.verified

    @property
    def timeline(self) -> FaultTimeline:
        """The log's timing view, for :class:`RecoverySimulator`."""
        return FaultTimeline.from_log(self.log)


class RobustExecutor(PlanExecutor):
    """A :class:`PlanExecutor` that survives faults injected mid-repair.

    Args:
        state: the failed cluster (must hold a DataStore).
        injector: armed fault injector (default: no faults — the run
            then behaves exactly like the plain executor).
        backoff: retry schedule for transient faults.
        max_replans: aggregated re-plans before degrading to direct.
        rebalance: run Algorithm 2 on aggregated re-plans so the
            degraded solution keeps λ low over the surviving racks.
        journal: optional write-ahead journal making the run resumable
            after a coordinator crash.
        verify_integrity: checksum-verify every transferred payload on
            receipt (default on — a fault-aware executor should never
            trust the network).
    """

    def __init__(
        self,
        state: ClusterState,
        injector: FaultInjector | None = None,
        backoff: BackoffPolicy | None = None,
        max_replans: int = 2,
        rebalance: bool = True,
        tracer: Tracer | NullTracer | None = None,
        journal=None,
        verify_integrity: bool = True,
        profiler=None,
    ) -> None:
        super().__init__(
            state,
            tracer=tracer,
            journal=journal,
            verify_integrity=verify_integrity,
            profiler=profiler,
        )
        self.injector = injector or FaultInjector()
        self.backoff = backoff or BackoffPolicy()
        self.max_replans = max_replans
        self.rebalance = rebalance
        self._log: FaultLog | None = None
        self._backoff_total = 0.0
        self._stall_total = 0.0
        self._last_corrupt_event: FaultEvent | None = None

    def _record(self, entry: FaultEvent | RecoveryAction) -> None:
        """Append to the FaultLog, mirroring into the trace/metrics.

        The FaultLog stays the source of truth (its determinism contract
        is unchanged); the tracer gets the same record as a structured
        ``fault.<kind>`` / ``action.<action>`` event in the one JSONL
        stream, and the registry counts faults and responses by kind.
        """
        assert self._log is not None
        self._log.record(entry)
        tracer = self.tracer
        reg = _metrics.CURRENT
        if isinstance(entry, FaultEvent):
            if tracer.enabled:
                tracer.event(
                    f"fault.{entry.kind.value}",
                    stage=entry.stage.value,
                    stripe_id=entry.stripe_id,
                    node=entry.node,
                    rack=entry.rack,
                    attempt=entry.attempt,
                    stall_seconds=entry.stall_seconds,
                )
            if reg is not None:
                reg.counter("faults.injected").inc(kind=entry.kind.value)
        else:
            if tracer.enabled:
                attrs = {
                    "wait_seconds": entry.wait_seconds,
                    "detail": entry.detail,
                }
                if entry.stripe_id is not None:
                    attrs["stripe_id"] = entry.stripe_id
                if entry.node is not None:
                    attrs["node"] = entry.node
                tracer.event(f"action.{entry.action.value}", **attrs)
            if reg is not None:
                reg.counter("faults.actions").inc(action=entry.action.value)

    # -- fault-aware pipeline hook --------------------------------------

    def _checkpoint(
        self,
        stage: PipelineStage,
        *,
        stripe_id: int,
        node: int,
        rack: int,
        chunk: int | None = None,
        is_partial: bool = False,
    ) -> None:
        super()._checkpoint(
            stage,
            stripe_id=stripe_id,
            node=node,
            rack=rack,
            chunk=chunk,
            is_partial=is_partial,
        )
        if self._log is None:  # not inside run(): behave like the base
            return
        attempt = 0
        while True:
            event = self.injector.poll(
                stage,
                stripe_id=stripe_id,
                node=node,
                rack=rack,
                attempt=attempt,
                is_partial=is_partial,
                kinds=_CHECKPOINT_KINDS,
            )
            if event is None:
                return
            self._record(event)
            if event.kind is FaultKind.COORDINATOR_CRASH:
                # Not survivable in-process: the coordinator IS this
                # executor.  Everything not yet journalled dies with it;
                # a RecoverySession resumes from the journal.
                raise CoordinatorCrashError(
                    f"coordinator crashed at {stage.value} "
                    f"(stripe {stripe_id})",
                    event=event,
                    records_written=(
                        self.journal.records_written
                        if self.journal is not None
                        else 0
                    ),
                )
            if event.kind in (FaultKind.HELPER_CRASH, FaultKind.DELEGATE_CRASH):
                raise InjectedCrashError(event)
            attempt += 1
            if attempt >= self.backoff.max_attempts:
                # A disk that never stops stalling / a link that never
                # stops dropping is dead for recovery purposes.
                self._record(
                    RecoveryAction(
                        action=ActionKind.ESCALATE,
                        stripe_id=stripe_id,
                        node=node,
                        detail=(
                            f"{event.kind.value} exceeded "
                            f"{self.backoff.max_attempts} attempts"
                        ),
                    )
                )
                raise InjectedCrashError(event)
            if event.kind is FaultKind.DISK_STALL:
                self._stall_total += event.stall_seconds
                self._record(
                    RecoveryAction(
                        action=ActionKind.WAIT,
                        stripe_id=stripe_id,
                        node=node,
                        wait_seconds=event.stall_seconds,
                        detail="disk stall waited out",
                    )
                )
            else:  # FLOW_DROP
                delay = self.backoff.delay(attempt)
                self._backoff_total += delay
                self._record(
                    RecoveryAction(
                        action=ActionKind.RETRY,
                        stripe_id=stripe_id,
                        node=node,
                        wait_seconds=delay,
                        detail=f"retransmit #{attempt} after drop",
                    )
                )

    # -- in-flight integrity ----------------------------------------------

    def _transmit(
        self,
        stage: PipelineStage,
        buf: np.ndarray,
        *,
        stripe_id: int,
        node: int,
        rack: int,
        attempt: int = 0,
        is_partial: bool = False,
    ) -> np.ndarray:
        """Deliver a payload, corrupting it if an armed fault fires.

        The corruption is a deterministic single-element bit flip (the
        position comes from the injector's seeded RNG), so a corrupt run
        replays byte-identically — and the receiver's checksum *must*
        catch it, because one flipped bit changes the CRC.
        """
        if self._log is None:
            return buf
        event = self.injector.poll(
            stage,
            stripe_id=stripe_id,
            node=node,
            rack=rack,
            attempt=attempt,
            is_partial=is_partial,
            kinds=_TRANSMIT_KINDS,
        )
        if event is None:
            return buf
        self._record(event)
        self._last_corrupt_event = event
        corrupted = np.array(buf, copy=True)
        corrupted.flat[self.injector.rng.randrange(corrupted.size)] ^= 1
        return corrupted

    def _on_corrupt(
        self,
        stage: PipelineStage,
        *,
        stripe_id: int,
        node: int,
        rack: int,
        attempt: int,
        is_partial: bool = False,
    ) -> None:
        """Corrupt receipt: retransmit with backoff, escalate when spent.

        Escalation raises :class:`InjectedCrashError` against the
        sending node — a link that corrupts every retransmission is as
        dead as a crashed helper — which routes into the existing
        REPLAN → DEGRADE ladder.
        """
        if self._log is None or self._last_corrupt_event is None:
            super()._on_corrupt(
                stage,
                stripe_id=stripe_id,
                node=node,
                rack=rack,
                attempt=attempt,
                is_partial=is_partial,
            )
            return
        if attempt >= self.backoff.max_attempts:
            self._record(
                RecoveryAction(
                    action=ActionKind.ESCALATE,
                    stripe_id=stripe_id,
                    node=node,
                    detail=(
                        f"corrupt payload survived "
                        f"{self.backoff.max_attempts} retransmissions"
                    ),
                )
            )
            raise InjectedCrashError(self._last_corrupt_event)
        delay = self.backoff.delay(attempt)
        self._backoff_total += delay
        self._record(
            RecoveryAction(
                action=ActionKind.RETRY,
                stripe_id=stripe_id,
                node=node,
                wait_seconds=delay,
                detail=f"retransmit #{attempt} after corrupt payload",
            )
        )

    # -- the robust loop -------------------------------------------------

    def run(
        self,
        event: FailureEvent,
        solution: MultiStripeSolution,
        plan: RecoveryPlan | None = None,
    ) -> RobustExecutionResult:
        """Execute ``solution`` to completion, surviving injected faults.

        Raises:
            RecoveryAbort: if recovery is impossible (fewer than ``k``
                survivors for some stripe, the replacement node lost, or
                the round budget exhausted).  The abort carries the full
                :class:`FaultLog` — never a partial/wrong answer.
        """
        log = FaultLog()
        self._log = log
        self._backoff_total = 0.0
        self._stall_total = 0.0
        try:
            return self._run(event, solution, plan, log)
        finally:
            self._log = None

    def _run(
        self,
        event: FailureEvent,
        solution: MultiStripeSolution,
        plan: RecoveryPlan | None,
        log: FaultLog,
    ) -> RobustExecutionResult:
        merged = ExecutionResult()
        dead: set[int] = set()
        mode_direct = not solution.aggregated
        degraded = False
        replans = 0
        rounds = 0
        wasted_cross = 0
        wasted_intra = 0
        current_sol = solution
        current_plan = (
            plan
            if plan is not None
            else plan_recovery(self.state, event, solution)
        )
        pending = {s.stripe_id for s in current_sol.solutions}
        # Each round either finishes or kills at least one more node, so
        # this bound is never hit by a live scenario — it is a guard
        # against a mis-specified injector.
        max_rounds = self.max_replans + self.state.topology.num_nodes + 2

        while pending:
            rounds += 1
            if rounds > max_rounds:
                self._record(
                    RecoveryAction(
                        action=ActionKind.ABORT,
                        detail="round budget exhausted",
                    )
                )
                raise RecoveryAbort("round budget exhausted", log, dead)
            crash: InjectedCrashError | None = None
            for sol in current_sol.solutions:
                if sol.stripe_id not in pending:
                    continue
                sp = current_plan.stripe_plan_for(sol.stripe_id)
                scratch = ExecutionResult()
                try:
                    self.execute_stripe(current_plan, sp, sol, scratch)
                except InjectedCrashError as exc:
                    wasted_cross += scratch.cross_rack_bytes
                    wasted_intra += scratch.intra_rack_bytes
                    crash = exc
                    break
                merged.merge(scratch)
                pending.discard(sol.stripe_id)
            if crash is None:
                break
            if crash.node == event.replacement_node:
                self._record(
                    RecoveryAction(
                        action=ActionKind.ABORT,
                        stripe_id=crash.event.stripe_id,
                        node=crash.node,
                        detail="replacement node lost",
                    )
                )
                raise RecoveryAbort("replacement node lost", log, dead)
            dead.add(crash.node)
            try:
                if not mode_direct and replans < self.max_replans:
                    replans += 1
                    self._record(
                        RecoveryAction(
                            action=ActionKind.REPLAN,
                            stripe_id=crash.event.stripe_id,
                            node=crash.node,
                            detail=(
                                f"aggregated re-plan #{replans} excluding "
                                f"nodes {sorted(dead)}"
                            ),
                        )
                    )
                    current_sol = self._replan_aggregated(pending, dead)
                else:
                    if not mode_direct:
                        mode_direct = True
                        degraded = True
                        self._record(
                            RecoveryAction(
                                action=ActionKind.DEGRADE,
                                node=crash.node,
                                detail=(
                                    "aggregation abandoned after "
                                    f"{replans} re-plans; direct recovery"
                                ),
                            )
                        )
                    else:
                        self._record(
                            RecoveryAction(
                                action=ActionKind.REPLAN,
                                stripe_id=crash.event.stripe_id,
                                node=crash.node,
                                detail=(
                                    f"direct re-plan excluding nodes "
                                    f"{sorted(dead)}"
                                ),
                            )
                        )
                    current_sol = self._replan_direct(pending, dead)
                current_plan = plan_recovery(
                    self.state, event, current_sol, dead_nodes=frozenset(dead)
                )
            except NoValidSolutionError as exc:
                self._record(
                    RecoveryAction(action=ActionKind.ABORT, detail=str(exc))
                )
                raise RecoveryAbort(f"data loss: {exc}", log, dead) from exc

        return RobustExecutionResult(
            result=merged,
            log=log,
            dead_nodes=frozenset(dead),
            replans=replans,
            degraded_to_direct=degraded,
            rounds=rounds,
            wasted_cross_rack_bytes=wasted_cross,
            wasted_intra_rack_bytes=wasted_intra,
            backoff_seconds=self._backoff_total,
            stall_seconds=self._stall_total,
            final_solution=current_sol,
            final_plan=current_plan,
        )

    # -- re-planning ------------------------------------------------------

    def _replan_aggregated(
        self, pending: set[int], dead: set[int]
    ) -> MultiStripeSolution:
        """CAR re-plan of the pending stripes over the surviving racks."""
        selector = CarSelector(self.state.topology, self.state.code.k)
        views = {}
        solutions = []
        for stripe in sorted(pending):
            raw = self.state.stripe_view(stripe)
            views[stripe] = degraded_view(raw, dead, self.state.topology)
            solutions.append(selector.degraded_solution(raw, dead))
        replanned = MultiStripeSolution(
            solutions,
            num_racks=self.state.topology.num_racks,
            aggregated=True,
        )
        if self.rebalance and len(solutions) > 1:
            replanned, _ = GreedyLoadBalancer().balance(
                views, replanned, selector
            )
        return replanned

    def _replan_direct(
        self, pending: set[int], dead: set[int]
    ) -> MultiStripeSolution:
        """RR-style fallback: the first ``k`` survivors, shipped raw."""
        k = self.state.code.k
        solutions = []
        for stripe in sorted(pending):
            view = degraded_view(
                self.state.stripe_view(stripe), dead, self.state.topology
            )
            survivors = sorted(view.surviving)
            if len(survivors) < k:
                raise NoValidSolutionError(
                    f"stripe {stripe}: only {len(survivors)} survivors "
                    f"remain, need {k}"
                )
            chunks_by_rack: dict[int, list[int]] = {}
            for c in survivors[:k]:
                rack = self.state.topology.rack_of(view.surviving[c])
                chunks_by_rack.setdefault(rack, []).append(c)
            solutions.append(
                PerStripeSolution(
                    stripe_id=stripe,
                    lost_chunk=view.lost_chunk,
                    failed_rack=view.failed_rack,
                    chunks_by_rack={
                        r: tuple(sorted(cs))
                        for r, cs in chunks_by_rack.items()
                    },
                )
            )
        return MultiStripeSolution(
            solutions,
            num_racks=self.state.topology.num_racks,
            aggregated=False,
        )


def recover_with_faults(
    state: ClusterState,
    event: FailureEvent,
    strategy,
    injector: FaultInjector | None = None,
    backoff: BackoffPolicy | None = None,
    max_replans: int = 2,
    rebalance: bool = True,
    journal=None,
    verify_integrity: bool = True,
    tracer=None,
) -> RobustExecutionResult:
    """Solve, plan, and robustly execute a recovery in one call.

    Args:
        strategy: any :class:`~repro.recovery.baselines.RecoveryStrategy`.

    Raises:
        RecoveryAbort: as :meth:`RobustExecutor.run`.
    """
    solution = strategy.solve(state)
    plan = plan_recovery(state, event, solution)
    executor = RobustExecutor(
        state,
        injector=injector,
        backoff=backoff,
        max_replans=max_replans,
        rebalance=rebalance,
        journal=journal,
        verify_integrity=verify_integrity,
        tracer=tracer,
    )
    return executor.run(event, solution, plan)
