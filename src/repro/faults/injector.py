"""Deterministic, seedable fault injection at pipeline checkpoints.

The :class:`FaultInjector` holds a set of armed :class:`FaultSpec`\\ s.
Every time the executor reaches a pipeline stage it *polls* the
injector with the full checkpoint context (stage, stripe, acting node,
rack, retry attempt, payload kind); the injector answers with the
first armed spec that matches — consuming one of its fires — or
``None``.  All randomness (probabilistic specs) comes from one seeded
``random.Random``, so a given seed replays the exact same fault
sequence on the exact same recovery, which the determinism tests
assert.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.faults.events import (
    FaultEvent,
    FaultKind,
    FaultSpec,
)
from repro.recovery.executor import PipelineStage

__all__ = ["FaultInjector"]


class FaultInjector:
    """Matches armed fault specs against executor checkpoints.

    Args:
        specs: faults to arm immediately (more via :meth:`arm`).
        seed: seed for the probabilistic-spec RNG.
    """

    def __init__(
        self, specs: Iterable[FaultSpec] = (), seed: int = 0
    ) -> None:
        self._specs: list[FaultSpec] = []
        self._remaining: list[int | None] = []
        self._seed = seed
        self.rng = random.Random(seed)
        self.history: list[FaultEvent] = []
        for spec in specs:
            self.arm(spec)

    def arm(self, spec: FaultSpec) -> None:
        """Add one spec to the armed set."""
        self._specs.append(spec)
        self._remaining.append(spec.max_fires)

    def reset(self) -> None:
        """Restore every spec's fire budget, the RNG, and the history.

        After ``reset`` the injector replays identically — used to run
        the same fault scenario twice when checking determinism.
        """
        self._remaining = [s.max_fires for s in self._specs]
        self.rng = random.Random(self._seed)
        self.history = []

    @property
    def armed(self) -> tuple[FaultSpec, ...]:
        """Specs that can still fire."""
        return tuple(
            s
            for s, left in zip(self._specs, self._remaining)
            if left is None or left > 0
        )

    def poll(
        self,
        stage: PipelineStage,
        *,
        stripe_id: int,
        node: int,
        rack: int,
        attempt: int = 0,
        is_partial: bool = False,
        kinds: frozenset[FaultKind] | set[FaultKind] | None = None,
    ) -> FaultEvent | None:
        """Ask whether a fault fires at this checkpoint.

        Args:
            stage: the pipeline stage being entered.
            stripe_id / node / rack: the acting context.
            attempt: 0 on first entry, incremented on each retry of the
                same checkpoint (so limited specs drain against retries).
            is_partial: True when the payload is a partially decoded
                chunk (distinguishes delegate flows from helper flows).
            kinds: restrict matching to these fault kinds (``None``
                matches all).  The executor polls transmission faults
                (corruption) and checkpoint faults (crashes, stalls,
                drops) at different points; the filter keeps each poll
                from consuming the other's fire budgets.

        Returns:
            The fired :class:`FaultEvent`, also appended to
            :attr:`history`, or ``None``.
        """
        for i, spec in enumerate(self._specs):
            left = self._remaining[i]
            if left is not None and left <= 0:
                continue
            if kinds is not None and spec.kind not in kinds:
                continue
            if spec.stage is not stage:
                continue
            if not self._payload_matches(spec.kind, stage, is_partial):
                continue
            if spec.node is not None and spec.node != node:
                continue
            if spec.rack is not None and spec.rack != rack:
                continue
            if spec.stripe_id is not None and spec.stripe_id != stripe_id:
                continue
            if spec.probability < 1.0 and self.rng.random() >= spec.probability:
                continue
            if left is not None:
                self._remaining[i] = left - 1
            event = FaultEvent(
                kind=spec.kind,
                stage=stage,
                stripe_id=stripe_id,
                node=node,
                rack=rack,
                attempt=attempt,
                stall_seconds=(
                    spec.stall_seconds
                    if spec.kind is FaultKind.DISK_STALL
                    else 0.0
                ),
            )
            self.history.append(event)
            return event
        return None

    @staticmethod
    def _payload_matches(
        kind: FaultKind, stage: PipelineStage, is_partial: bool
    ) -> bool:
        """Disambiguate who a transfer-stage fault hits.

        On transfer stages, a helper crash targets raw-chunk flows (the
        src is a chunk holder) while a delegate crash targets
        partial-payload flows (the src is a delegate).  Flow drops and
        non-transfer stages are payload-agnostic.
        """
        if stage not in (
            PipelineStage.INTRA_TRANSFER,
            PipelineStage.CROSS_TRANSFER,
        ):
            return True
        if kind is FaultKind.HELPER_CRASH:
            return not is_partial
        if kind is FaultKind.DELEGATE_CRASH:
            return is_partial
        return True
