"""Fault vocabulary: kinds, specs, events, actions, and the FaultLog.

A :class:`FaultSpec` *arms* the injector ("crash a helper at the first
cross-rack transfer of stripe 3"); a :class:`FaultEvent` records that a
fault actually *fired* at a concrete pipeline checkpoint; a
:class:`RecoveryAction` records how the robust executor responded
(retry with backoff, wait out a stall, re-plan, degrade, abort).  The
:class:`FaultLog` interleaves both in execution order, giving a single
deterministic, serialisable account of a faulty recovery that the
tests, benchmarks, and timing model all consume.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field

from repro.errors import RecoveryError
from repro.recovery.executor import PipelineStage

__all__ = [
    "FaultKind",
    "ActionKind",
    "FaultSpec",
    "FaultEvent",
    "RecoveryAction",
    "FaultLog",
    "InjectedCrashError",
    "RecoveryAbort",
]


class FaultKind(str, enum.Enum):
    """The failure modes the injector can produce."""

    #: A node holding a retrieved chunk dies (permanent, secondary failure).
    HELPER_CRASH = "helper_crash"
    #: A rack delegate dies while partially decoding or shipping its partial.
    DELEGATE_CRASH = "delegate_crash"
    #: A disk read hangs for ``stall_seconds`` before completing.
    DISK_STALL = "disk_stall"
    #: A network flow is dropped and must be retransmitted.
    FLOW_DROP = "flow_drop"
    #: The recovery coordinator itself dies mid-session.  Only the
    #: write-ahead journal survives; a new incarnation resumes from it.
    COORDINATOR_CRASH = "coordinator_crash"
    #: A flow's payload is silently corrupted in transit; the receiver's
    #: checksum verification detects it before decode (value ``corrupt``
    #: so telemetry events are named ``fault.corrupt``).
    IN_FLIGHT_CORRUPT = "corrupt"


#: Stages each fault kind may be injected at.  ``CROSS_TRANSFER`` is
#: shared: a helper crash hits a raw-chunk flow (direct/RR recovery),
#: a delegate crash hits a partial-payload flow (aggregated/CAR).
VALID_STAGES: dict[FaultKind, frozenset[PipelineStage]] = {
    FaultKind.HELPER_CRASH: frozenset(
        {
            PipelineStage.DISK_READ,
            PipelineStage.INTRA_TRANSFER,
            PipelineStage.CROSS_TRANSFER,
        }
    ),
    FaultKind.DELEGATE_CRASH: frozenset(
        {PipelineStage.PARTIAL_DECODE, PipelineStage.CROSS_TRANSFER}
    ),
    FaultKind.DISK_STALL: frozenset({PipelineStage.DISK_READ}),
    FaultKind.FLOW_DROP: frozenset(
        {PipelineStage.INTRA_TRANSFER, PipelineStage.CROSS_TRANSFER}
    ),
    # The coordinator can die at any checkpoint of any stage.
    FaultKind.COORDINATOR_CRASH: frozenset(PipelineStage),
    FaultKind.IN_FLIGHT_CORRUPT: frozenset(
        {PipelineStage.INTRA_TRANSFER, PipelineStage.CROSS_TRANSFER}
    ),
}


class ActionKind(str, enum.Enum):
    """Responses the robust executor takes to injected faults."""

    RETRY = "retry"          # dropped flow retransmitted after backoff
    WAIT = "wait"            # stalled disk waited out
    ESCALATE = "escalate"    # transient fault exhausted retries -> crash
    REPLAN = "replan"        # selector/planner re-invoked without dead nodes
    DEGRADE = "degrade"      # aggregation abandoned, direct recovery
    ABORT = "abort"          # recovery impossible, typed failure raised


@dataclass(frozen=True)
class FaultSpec:
    """An armed fault: what to inject, where, and how often.

    Attributes:
        kind: the failure mode.
        stage: the pipeline checkpoint it fires at.
        node / rack / stripe_id: optional filters; ``None`` matches any.
        max_fires: how many checkpoints this spec triggers at before it
            is spent (``None`` = unlimited, e.g. a permanently flaky
            link or a crash storm).
        probability: chance of firing at each matching checkpoint,
            evaluated on the injector's seeded RNG (deterministic).
        stall_seconds: stall duration, for :attr:`FaultKind.DISK_STALL`.
    """

    kind: FaultKind
    stage: PipelineStage
    node: int | None = None
    rack: int | None = None
    stripe_id: int | None = None
    max_fires: int | None = 1
    probability: float = 1.0
    stall_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.stage not in VALID_STAGES[self.kind]:
            raise RecoveryError(
                f"{self.kind.value} cannot be injected at {self.stage.value}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise RecoveryError("probability must be in (0, 1]")
        if self.max_fires is not None and self.max_fires < 1:
            raise RecoveryError("max_fires must be >= 1 (or None)")
        if self.stall_seconds <= 0:
            raise RecoveryError("stall_seconds must be positive")


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired at a pipeline checkpoint."""

    kind: FaultKind
    stage: PipelineStage
    stripe_id: int
    node: int
    rack: int
    attempt: int = 0
    stall_seconds: float = 0.0


@dataclass(frozen=True)
class RecoveryAction:
    """One response of the robust executor, in execution order."""

    action: ActionKind
    stripe_id: int | None = None
    node: int | None = None
    wait_seconds: float = 0.0
    detail: str = ""


@dataclass
class FaultLog:
    """Ordered, comparable record of faults and responses.

    Two runs with the same seed and cluster produce byte-identical
    logs — the determinism contract the fault tests assert.
    """

    records: list[FaultEvent | RecoveryAction] = field(default_factory=list)

    def record(self, entry: FaultEvent | RecoveryAction) -> None:
        """Append one record."""
        self.records.append(entry)

    @property
    def faults(self) -> tuple[FaultEvent, ...]:
        """Only the injected fault events, in order."""
        return tuple(r for r in self.records if isinstance(r, FaultEvent))

    @property
    def actions(self) -> tuple[RecoveryAction, ...]:
        """Only the executor's responses, in order."""
        return tuple(r for r in self.records if isinstance(r, RecoveryAction))

    @property
    def injected_delay_seconds(self) -> float:
        """Total simulated wall-clock added by stalls and backoff."""
        return sum(a.wait_seconds for a in self.actions)

    def count(self, kind: FaultKind) -> int:
        """Number of fired faults of one kind."""
        return sum(1 for f in self.faults if f.kind is kind)

    def to_dicts(self) -> list[dict]:
        """JSON-ready representation (enums flattened to strings)."""
        out = []
        for r in self.records:
            d = asdict(r)
            d["record"] = "fault" if isinstance(r, FaultEvent) else "action"
            for key, value in d.items():
                if isinstance(value, enum.Enum):
                    d[key] = value.value
            out.append(d)
        return out

    def __len__(self) -> int:
        return len(self.records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultLog):
            return NotImplemented
        return self.records == other.records


class InjectedCrashError(RecoveryError):
    """A helper or delegate crash fired; the current plan is void.

    Internal control flow of :class:`~repro.faults.robust.RobustExecutor`
    (caught and turned into a re-plan); escapes only if a crash fires
    under the plain :class:`~repro.recovery.executor.PlanExecutor`.
    """

    def __init__(self, event: FaultEvent) -> None:
        super().__init__(
            f"{event.kind.value} at {event.stage.value}: node {event.node} "
            f"(stripe {event.stripe_id})"
        )
        self.event = event
        self.node = event.node

    def __reduce__(self):
        # Exception.__reduce__ replays __init__ with self.args — here the
        # formatted message, not the event — so an unpickled instance
        # would carry a string where a FaultEvent belongs.  Workers in
        # the parallel runner must ship the real event.
        return (self.__class__, (self.event,))


class RecoveryAbort(RecoveryError):
    """Recovery could not complete; carries the full :class:`FaultLog`.

    Raised when fewer than ``k`` chunks survive for some stripe, when
    the crash/re-plan cycle exceeds its round budget, or when the
    replacement node itself is killed.  Never raised with a partial
    answer: callers get either a verified reconstruction or this.
    """

    def __init__(self, reason: str, log: FaultLog, dead_nodes=frozenset()) -> None:
        super().__init__(reason)
        self.reason = reason
        self.log = log
        self.dead_nodes = frozenset(dead_nodes)

    def __reduce__(self):
        # self.args holds only (reason,); the default reduce would call
        # __init__ without the required log argument and fail to
        # unpickle — which is how worker-raised aborts used to die
        # inside the ProcessPoolExecutor result queue.
        return (self.__class__, (self.reason, self.log, self.dead_nodes))
