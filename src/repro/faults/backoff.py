"""Capped exponential backoff for retried transfers.

Delays are fully deterministic (no jitter): retry timing must be
byte-identical across runs for the fault log and the simulated
:class:`~repro.sim.recovery_sim.RecoveryTiming` to be reproducible,
which the fault-injection tests assert.  Attempt ``i`` (1-based) waits
``min(cap_seconds, base_seconds * multiplier**(i - 1))``.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["BackoffPolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Retry budget and delay schedule for transient faults.

    Attributes:
        base_seconds: delay before the first retry.
        multiplier: growth factor per attempt.
        cap_seconds: upper bound on any single delay.
        max_attempts: transient faults tolerated at one checkpoint
            before the fault is escalated to a permanent crash (a disk
            that never stops stalling, a link that never stops
            dropping, is dead for recovery purposes).
    """

    base_seconds: float = 0.1
    multiplier: float = 2.0
    cap_seconds: float = 5.0
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if self.base_seconds <= 0 or self.cap_seconds <= 0:
            raise ConfigurationError("backoff delays must be positive")
        if self.multiplier < 1.0:
            raise ConfigurationError("backoff multiplier must be >= 1")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")

    def delay(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based), capped.

        Raises:
            ConfigurationError: if ``attempt`` < 1.
        """
        if attempt < 1:
            raise ConfigurationError("attempt numbers are 1-based")
        return min(
            self.cap_seconds,
            self.base_seconds * self.multiplier ** (attempt - 1),
        )

    def delays(self) -> Iterator[float]:
        """The full delay schedule, one entry per allowed attempt."""
        for attempt in range(1, self.max_attempts + 1):
            yield self.delay(attempt)

    @property
    def total_budget_seconds(self) -> float:
        """Worst-case total wait at one checkpoint."""
        return sum(self.delays())
