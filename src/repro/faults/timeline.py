"""Timing view of a fault log, consumed by the recovery simulator.

The :class:`~repro.faults.events.FaultLog` records *what* happened;
:class:`FaultTimeline` condenses it into the two perturbations the
fluid simulator can replay on a plan's task DAG:

- per ``(stripe, node)`` **disk stall** seconds, serialised on that
  node's disk resource ahead of the stripe's reads;
- per ``(stripe, src node)`` **flow retransmissions**, each an extra
  full-size flow over the same path that the real flow must wait for —
  so retry time lands in the makespan (``RecoveryTiming.total_time``)
  and in the busiest-link byte counts.

Crash/re-plan rounds are not replayed here: the caller simulates the
*final* plan of a robust run; the timeline carries the transient
faults that final plan still experienced.  Entries that reference a
node absent from the simulated plan are simply never matched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.events import FaultKind, FaultLog

__all__ = ["FaultTimeline"]


@dataclass(frozen=True)
class FaultTimeline:
    """Aggregated timing perturbations extracted from a fault log.

    Attributes:
        disk_stalls: ``(stripe_id, node) -> total stall seconds``.
        flow_retries: ``(stripe_id, src node) -> dropped-attempt count``.
    """

    disk_stalls: dict[tuple[int, int], float] = field(default_factory=dict)
    flow_retries: dict[tuple[int, int], int] = field(default_factory=dict)

    @classmethod
    def from_log(cls, log: FaultLog) -> "FaultTimeline":
        """Condense a fault log into its timing perturbations."""
        stalls: dict[tuple[int, int], float] = {}
        retries: dict[tuple[int, int], int] = {}
        for ev in log.faults:
            key = (ev.stripe_id, ev.node)
            if ev.kind is FaultKind.DISK_STALL:
                stalls[key] = stalls.get(key, 0.0) + ev.stall_seconds
            elif ev.kind is FaultKind.FLOW_DROP:
                retries[key] = retries.get(key, 0) + 1
        return cls(disk_stalls=stalls, flow_retries=retries)

    @property
    def empty(self) -> bool:
        """True iff the timeline perturbs nothing."""
        return not self.disk_stalls and not self.flow_retries

    def stall_for(self, stripe_id: int, node: int) -> float:
        """Stall seconds for one stripe's reads on one node (0 if none)."""
        return self.disk_stalls.get((stripe_id, node), 0.0)

    def retries_for(self, stripe_id: int, node: int) -> int:
        """Retransmissions for flows this node sources in this stripe."""
        return self.flow_retries.get((stripe_id, node), 0)

    @property
    def total_retries(self) -> int:
        """All retransmitted flows across the recovery."""
        return sum(self.flow_retries.values())

    @property
    def total_stall_seconds(self) -> float:
        """All injected disk-stall seconds."""
        return sum(self.disk_stalls.values())
