"""Small bounded LRU cache used by the performance-critical layers.

The GF kernel layer caches per-constant product tables and the erasure
codes cache decode inverses and repair vectors.  All of those caches
used to be unbounded (a plain dict or ``functools.lru_cache``), which
both leaks memory under adversarial key streams and — in the
``lru_cache`` case — makes the owning object unpicklable, blocking the
process-pool experiment driver.  :class:`BoundedCache` is the shared
replacement: a plain least-recently-used mapping with an explicit entry
bound and hit/miss counters for observability.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Hashable
from typing import TypeVar

from repro.errors import ConfigurationError
from repro.obs.metrics import register_cache

__all__ = ["BoundedCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


class BoundedCache:
    """A least-recently-used mapping with a fixed entry bound.

    Args:
        maxsize: maximum number of entries kept; the least recently
            *used* (read or written) entry is evicted first.
        name: optional telemetry name.  Named caches self-register
            (weakly) with :mod:`repro.obs.metrics` at construction, so
            their hit/miss/eviction stats appear in metrics snapshots
            and ``repro-car metrics`` without call-site changes; several
            instances may share one name and aggregate.

    The cache is deliberately minimal: ``get`` / ``put`` /
    :meth:`get_or_build`, plus ``hits``/``misses``/``evictions``
    counters so benches can assert cache effectiveness.
    """

    def __init__(self, maxsize: int, name: str | None = None) -> None:
        if maxsize < 1:
            raise ConfigurationError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()
        if name is not None:
            register_cache(name, self)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: K, default: V | None = None) -> V | None:
        """Return the cached value (refreshing recency) or ``default``."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: K, value: V) -> V:
        """Insert/refresh an entry, evicting the oldest past the bound."""
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1
        return value

    def get_or_build(self, key: K, builder: Callable[[], V]) -> V:
        """Return the cached value, building and inserting it on a miss."""
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self._data.move_to_end(key)
            self.hits += 1
            return value
        self.misses += 1
        return self.put(key, builder())

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._data.clear()

    def __repr__(self) -> str:
        label = f"{self.name!r}, " if self.name else ""
        return (
            f"BoundedCache({label}size={len(self._data)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
