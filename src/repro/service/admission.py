"""Admission control: the shared-link contention model and repair caps.

The paper's motivating observation is that repair traffic and
foreground degraded reads *compete for the same scarce cross-rack
bandwidth*.  The service layer makes that competition explicit:

- a :class:`ServiceClock` maps *modelled* seconds onto wall time at a
  configurable ``speedup`` (the daemons sleep ``delay / speedup`` real
  seconds for every modelled ``delay``), so a bench covering minutes of
  cluster time runs in seconds while every latency is reported in
  modelled milliseconds;
- a :class:`ModeledLink` is a FIFO fluid pipe for the shared cross-rack
  core: a transfer of ``n`` bytes queued behind earlier transfers
  finishes at ``max(now, free_at) + n / capacity`` — queueing delay is
  what the client's p99 measures;
- a :class:`TokenBucket` caps the *repair* side: the background repair
  service must earn tokens at ``rate`` bytes/s (with a ``burst``
  allowance) before shipping a window cross-rack;
- the :class:`AdmissionController` composes the two and adds the
  client-priority knob: while foreground reads are active (within
  ``priority_window`` modelled seconds), each repair byte costs
  ``client_priority`` tokens, so raising the knob makes repair yield.

Everything here is synchronous and thread-safe (one lock per object):
the event loop charges client reads while the repair worker thread
charges repair windows, and both observe one modelled timeline.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ConfigurationError

__all__ = [
    "ServiceClock",
    "TokenBucket",
    "ModeledLink",
    "AdmissionController",
]


class ServiceClock:
    """Modelled time, derived from the wall clock at a speedup factor.

    Args:
        speedup: modelled seconds per real second (e.g. 200 means one
            modelled second costs 5 ms of wall time).
        clock: injectable real-time source (monotonic seconds) for
            deterministic tests.
    """

    def __init__(self, speedup: float = 200.0, clock=time.monotonic) -> None:
        if speedup <= 0:
            raise ConfigurationError(f"speedup must be > 0, got {speedup}")
        self.speedup = float(speedup)
        self._clock = clock
        self._t0 = clock()

    def now(self) -> float:
        """Current modelled time in seconds (0 at construction)."""
        return (self._clock() - self._t0) * self.speedup

    def to_real(self, model_seconds: float) -> float:
        """Wall-clock seconds corresponding to a modelled duration."""
        return max(0.0, model_seconds) / self.speedup

    def sleep_sync(self, model_seconds: float) -> None:
        """Block the calling thread for a modelled duration."""
        real = self.to_real(model_seconds)
        if real > 0:
            time.sleep(real)


class TokenBucket:
    """Byte-rate limiter with burst allowance (debt model).

    ``reserve(n, now)`` always succeeds and returns how long the caller
    must wait before the reserved bytes are within rate: tokens may go
    negative (debt), and the wait is the time for the refill to clear
    the debt.  This matches how the repair service uses it — it has
    already decided to ship the window; the bucket decides *when*.
    """

    def __init__(self, rate_bytes_per_s: float, burst_bytes: float) -> None:
        if rate_bytes_per_s <= 0:
            raise ConfigurationError(
                f"token rate must be > 0 B/s, got {rate_bytes_per_s}"
            )
        if burst_bytes < 0:
            raise ConfigurationError(
                f"burst must be >= 0 B, got {burst_bytes}"
            )
        self.rate = float(rate_bytes_per_s)
        self.burst = float(burst_bytes)
        self._tokens = float(burst_bytes)
        self._last = 0.0
        self._lock = threading.Lock()

    def reserve(self, nbytes: float, now: float) -> float:
        """Deduct ``nbytes`` tokens; return the modelled wait in seconds."""
        if nbytes < 0:
            raise ConfigurationError(f"cannot reserve {nbytes} bytes")
        with self._lock:
            elapsed = max(0.0, now - self._last)
            self._last = max(self._last, now)
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._tokens -= nbytes
            if self._tokens >= 0:
                return 0.0
            return -self._tokens / self.rate


class ModeledLink:
    """A FIFO fluid pipe: one shared capacity, queueing included.

    ``reserve(n, now)`` appends an ``n``-byte transfer to the link's
    queue and returns the modelled delay until it completes (queueing
    behind everything already reserved, plus its own service time).
    """

    def __init__(self, capacity_bytes_per_s: float, name: str = "core") -> None:
        if capacity_bytes_per_s <= 0:
            raise ConfigurationError(
                f"link capacity must be > 0 B/s, got {capacity_bytes_per_s}"
            )
        self.capacity = float(capacity_bytes_per_s)
        self.name = name
        self._free_at = 0.0
        self._busy_model_s = 0.0
        self._lock = threading.Lock()

    def reserve(self, nbytes: float, now: float) -> float:
        """Queue ``nbytes``; return modelled seconds until it completes."""
        if nbytes < 0:
            raise ConfigurationError(f"cannot reserve {nbytes} bytes")
        service = nbytes / self.capacity
        with self._lock:
            start = max(now, self._free_at)
            self._free_at = start + service
            self._busy_model_s += service
            return self._free_at - now

    @property
    def busy_seconds(self) -> float:
        """Total modelled service time charged so far (utilisation)."""
        with self._lock:
            return self._busy_model_s


class AdmissionController:
    """Arbitrates the shared cross-rack link between clients and repair.

    Args:
        link: the shared cross-rack pipe both traffic classes use.
        clock: the service's modelled clock.
        repair_cap_bytes_per_s: token rate for repair traffic (None =
            uncapped; repair still queues on the shared link).
        repair_burst_bytes: bucket burst (default: one second of cap).
        client_priority: token multiplier applied to repair bytes while
            clients are active; 1.0 = no preference.
        priority_window: modelled seconds after a client transfer during
            which the priority multiplier applies.
    """

    def __init__(
        self,
        link: ModeledLink,
        clock: ServiceClock,
        *,
        repair_cap_bytes_per_s: float | None = None,
        repair_burst_bytes: float | None = None,
        client_priority: float = 1.0,
        priority_window: float = 1.0,
    ) -> None:
        if client_priority < 1.0:
            raise ConfigurationError(
                f"client_priority must be >= 1.0, got {client_priority}"
            )
        self.link = link
        self.clock = clock
        self.client_priority = float(client_priority)
        self.priority_window = float(priority_window)
        self.bucket: TokenBucket | None = None
        if repair_cap_bytes_per_s is not None:
            burst = (
                repair_burst_bytes
                if repair_burst_bytes is not None
                else repair_cap_bytes_per_s
            )
            self.bucket = TokenBucket(repair_cap_bytes_per_s, burst)
        self._last_client = float("-inf")
        self._lock = threading.Lock()
        self.client_bytes = 0
        self.repair_bytes = 0

    # -- client side (event loop) ---------------------------------------

    def client_delay(self, nbytes: int) -> float:
        """Charge a foreground transfer; return its modelled delay."""
        now = self.clock.now()
        with self._lock:
            self._last_client = now
            self.client_bytes += nbytes
        return self.link.reserve(nbytes, now)

    # -- repair side (worker thread) ------------------------------------

    def repair_delay(self, nbytes: int) -> float:
        """Charge a repair shipment; return its modelled delay.

        The wait is the token-bucket wait (rate cap, with the priority
        multiplier while clients are active) plus the shared-link
        queueing.  The link is charged at ``now`` — not after the token
        wait — so a rate-capped repair never reserves link capacity in
        the *future* and stalls foreground reads behind bytes it has
        not shipped yet.
        """
        now = self.clock.now()
        with self._lock:
            clients_active = (now - self._last_client) <= self.priority_window
            self.repair_bytes += nbytes
        wait = 0.0
        if self.bucket is not None:
            cost = nbytes * (
                self.client_priority if clients_active else 1.0
            )
            wait = self.bucket.reserve(cost, now)
        return wait + self.link.reserve(nbytes, now)

    def snapshot(self) -> dict:
        """Byte counters and utilisation for status replies/metrics."""
        with self._lock:
            return {
                "client_bytes": self.client_bytes,
                "repair_bytes": self.repair_bytes,
                "link_busy_model_s": self.link.busy_seconds,
                "repair_cap_bytes_per_s": (
                    self.bucket.rate if self.bucket is not None else None
                ),
                "client_priority": self.client_priority,
            }
