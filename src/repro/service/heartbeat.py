"""Heartbeat bookkeeping and timeout-based failure detection.

Pure state machine, no I/O: the coordinator feeds it ``beat()`` calls
as heartbeat frames arrive and polls ``check()`` on its detector loop.
Each *node* (not each chunkserver — one chunkserver daemon may host
several modelled nodes, like a host with several disks) holds a lease:

.. code-block:: text

    UNKNOWN --register--> ALIVE --no beat > suspect_after--> SUSPECT
       ^                    ^                                   |
       |                    +------------- beat ----------------+
       |                                                        |
       +-- re-register (new incarnation) -- DEAD <-- no beat > dead_after

``SUSPECT`` is a grace state: a late heartbeat fully restores the
lease.  ``DEAD`` is sticky — a dead node's chunkserver must
re-``register()`` (a new incarnation) to serve again, which keeps the
repair planner's view stable while it is re-planning around the loss.

Transitions come out of :meth:`FailureDetector.check` as
:class:`LeaseTransition` records, which the coordinator turns into
trace events, repair triggers, and re-plan signals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError, ServiceError

__all__ = ["NodeHealth", "LeaseTransition", "FailureDetector"]


class NodeHealth(str, enum.Enum):
    """Lease state of one modelled node."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass(frozen=True)
class LeaseTransition:
    """One observed health change.

    Attributes:
        node_id: the modelled node.
        server_id: the chunkserver daemon hosting it.
        old: previous health (None for first registration).
        new: new health.
        at: modelled time of the transition.
    """

    node_id: int
    server_id: str
    old: NodeHealth | None
    new: NodeHealth
    at: float


@dataclass
class _Lease:
    server_id: str
    health: NodeHealth
    last_beat: float


class FailureDetector:
    """Per-node heartbeat leases with SUSPECT/DEAD timeouts.

    Args:
        suspect_after: modelled seconds without a beat before ALIVE
            degrades to SUSPECT.
        dead_after: modelled seconds without a beat before a node is
            declared DEAD (must exceed ``suspect_after``).
    """

    def __init__(self, suspect_after: float, dead_after: float) -> None:
        if suspect_after <= 0 or dead_after <= suspect_after:
            raise ConfigurationError(
                "need 0 < suspect_after < dead_after, got "
                f"suspect_after={suspect_after}, dead_after={dead_after}"
            )
        self.suspect_after = float(suspect_after)
        self.dead_after = float(dead_after)
        self._leases: dict[int, _Lease] = {}

    # -- feeding ---------------------------------------------------------

    def register(
        self, server_id: str, nodes, now: float
    ) -> list[LeaseTransition]:
        """(Re-)register a chunkserver's nodes; all become ALIVE."""
        out = []
        for node_id in nodes:
            old = self._leases.get(node_id)
            if old is not None and old.server_id != server_id and (
                old.health is not NodeHealth.DEAD
            ):
                raise ServiceError(
                    f"node {node_id} is already registered to "
                    f"{old.server_id!r} (state {old.health.value})"
                )
            self._leases[int(node_id)] = _Lease(
                server_id, NodeHealth.ALIVE, now
            )
            if old is None or old.health is not NodeHealth.ALIVE:
                out.append(
                    LeaseTransition(
                        int(node_id), server_id,
                        None if old is None else old.health,
                        NodeHealth.ALIVE, now,
                    )
                )
        return out

    def beat(
        self, server_id: str, nodes, now: float
    ) -> list[LeaseTransition]:
        """Record a heartbeat covering ``nodes``.

        A beat refreshes ALIVE leases, recovers SUSPECT ones, and is
        *ignored* for DEAD ones (sticky until re-registration).  Nodes
        the chunkserver hosts but omits from the beat simply do not get
        refreshed — that is how a single node's death is simulated on a
        live host.
        """
        out = []
        for node_id in nodes:
            lease = self._leases.get(int(node_id))
            if lease is None or lease.server_id != server_id:
                continue
            if lease.health is NodeHealth.DEAD:
                continue
            if lease.health is NodeHealth.SUSPECT:
                out.append(
                    LeaseTransition(
                        int(node_id), server_id,
                        NodeHealth.SUSPECT, NodeHealth.ALIVE, now,
                    )
                )
                lease.health = NodeHealth.ALIVE
            lease.last_beat = now
        return out

    # -- polling ---------------------------------------------------------

    def check(self, now: float) -> list[LeaseTransition]:
        """Expire leases; return every transition this poll produced."""
        out = []
        for node_id, lease in sorted(self._leases.items()):
            silent = now - lease.last_beat
            if lease.health is NodeHealth.ALIVE and silent > self.suspect_after:
                lease.health = NodeHealth.SUSPECT
                out.append(
                    LeaseTransition(
                        node_id, lease.server_id,
                        NodeHealth.ALIVE, NodeHealth.SUSPECT, now,
                    )
                )
            if lease.health is NodeHealth.SUSPECT and silent > self.dead_after:
                lease.health = NodeHealth.DEAD
                out.append(
                    LeaseTransition(
                        node_id, lease.server_id,
                        NodeHealth.SUSPECT, NodeHealth.DEAD, now,
                    )
                )
        return out

    # -- queries ---------------------------------------------------------

    def health(self, node_id: int) -> NodeHealth | None:
        """Current health of one node (None = never registered)."""
        lease = self._leases.get(node_id)
        return lease.health if lease is not None else None

    def server_of(self, node_id: int) -> str | None:
        """The chunkserver hosting ``node_id``."""
        lease = self._leases.get(node_id)
        return lease.server_id if lease is not None else None

    def dead_nodes(self) -> frozenset[int]:
        """All nodes currently DEAD."""
        return frozenset(
            n for n, l in self._leases.items() if l.health is NodeHealth.DEAD
        )

    def alive_nodes(self) -> frozenset[int]:
        """All nodes currently ALIVE (SUSPECT excluded)."""
        return frozenset(
            n for n, l in self._leases.items() if l.health is NodeHealth.ALIVE
        )

    def snapshot(self) -> dict[int, str]:
        """node_id -> health value, for status replies."""
        return {n: l.health.value for n, l in sorted(self._leases.items())}
