"""Length-prefixed wire protocol for the cluster service daemons.

One frame carries a JSON *header* (control fields) and an optional raw
binary *blob* (chunk payloads — never base64'd onto the JSON path):

.. code-block:: text

    +----------------+----------------+---------------+-----------+
    | header_len !I  | blob_len !I    | header (JSON) | blob      |
    +----------------+----------------+---------------+-----------+
      4 bytes          4 bytes          header_len      blob_len

Both length fields are unsigned big-endian 32-bit integers.  The
header must decode to a JSON *object* with a string ``type`` key (the
dispatch tag).  Size limits are enforced on both ends —
``MAX_HEADER_BYTES`` for the JSON part, ``MAX_BLOB_BYTES`` for the
payload — so a corrupt or hostile length prefix cannot balloon a read.

Three consumption styles share the same format:

- :func:`encode_frame` / :func:`decode_frame` — whole-buffer
  round-trip (tests, journalling of raw frames);
- :class:`FrameReader` — an incremental, sans-io parser: ``feed()``
  bytes as they arrive (any fragmentation), get complete frames out,
  and inspect :attr:`FrameReader.buffered` for a torn tail;
- :func:`read_frame` / :func:`write_frame` — asyncio stream helpers
  used by the daemons.  A connection closed *between* frames is a
  clean EOF (``None``); closed *inside* a frame raises
  :class:`~repro.errors.ProtocolError` (a torn frame is a failure,
  silence is not).
"""

from __future__ import annotations

import asyncio
import json
import struct

from repro.errors import ProtocolError

__all__ = [
    "MAX_HEADER_BYTES",
    "MAX_BLOB_BYTES",
    "MsgType",
    "encode_frame",
    "decode_frame",
    "FrameReader",
    "read_frame",
    "write_frame",
]

_PREFIX = struct.Struct("!II")

#: Ceiling for the JSON header of one frame (control data is small).
MAX_HEADER_BYTES = 1 << 20
#: Ceiling for the binary blob of one frame (a handful of chunks).
MAX_BLOB_BYTES = 64 << 20


class MsgType:
    """Frame ``type`` tags spoken by the daemons (plain constants)."""

    HELLO = "hello"                    # chunkserver/client -> coordinator
    HELLO_ACK = "hello-ack"            # coordinator -> peer
    HEARTBEAT = "heartbeat"            # chunkserver -> coordinator
    READ_CHUNK = "read-chunk"          # coordinator -> chunkserver
    CHUNK_DATA = "chunk-data"          # chunkserver -> coordinator (blob)
    READ = "read"                      # client -> coordinator
    READ_REPLY = "read-reply"          # coordinator -> client (blob)
    STATUS = "status"                  # any -> coordinator
    STATUS_REPLY = "status-reply"      # coordinator -> any
    SHUTDOWN = "shutdown"              # admin -> daemon
    ERROR = "error"                    # any direction


def encode_frame(msg: dict, blob: bytes = b"") -> bytes:
    """Serialise one frame.

    Raises:
        ProtocolError: non-dict message, missing ``type``, or a part
            over its size limit.
    """
    if not isinstance(msg, dict) or not isinstance(msg.get("type"), str):
        raise ProtocolError(
            "frame header must be a dict with a string 'type' key"
        )
    header = json.dumps(msg, sort_keys=True).encode("utf-8")
    if len(header) > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"frame header {len(header)} B exceeds {MAX_HEADER_BYTES} B"
        )
    blob = bytes(blob)
    if len(blob) > MAX_BLOB_BYTES:
        raise ProtocolError(
            f"frame blob {len(blob)} B exceeds {MAX_BLOB_BYTES} B"
        )
    return _PREFIX.pack(len(header), len(blob)) + header + blob


def _decode_header(header: bytes) -> dict:
    try:
        msg = json.loads(header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame header is not valid JSON: {exc}") from exc
    if not isinstance(msg, dict) or not isinstance(msg.get("type"), str):
        raise ProtocolError(
            "frame header must be a JSON object with a string 'type' key"
        )
    return msg


def _check_lengths(header_len: int, blob_len: int) -> None:
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"declared header length {header_len} B exceeds "
            f"{MAX_HEADER_BYTES} B"
        )
    if blob_len > MAX_BLOB_BYTES:
        raise ProtocolError(
            f"declared blob length {blob_len} B exceeds {MAX_BLOB_BYTES} B"
        )


def decode_frame(data: bytes) -> tuple[dict, bytes]:
    """Parse exactly one frame from ``data``.

    Raises:
        ProtocolError: truncated buffer, trailing garbage, oversized
            declared lengths, or an invalid header.
    """
    if len(data) < _PREFIX.size:
        raise ProtocolError(
            f"torn frame: {len(data)} B is shorter than the "
            f"{_PREFIX.size}-byte prefix"
        )
    header_len, blob_len = _PREFIX.unpack_from(data)
    _check_lengths(header_len, blob_len)
    total = _PREFIX.size + header_len + blob_len
    if len(data) < total:
        raise ProtocolError(
            f"torn frame: need {total} B, have {len(data)} B"
        )
    if len(data) > total:
        raise ProtocolError(
            f"trailing garbage: frame is {total} B, buffer has {len(data)} B"
        )
    header = data[_PREFIX.size:_PREFIX.size + header_len]
    blob = data[_PREFIX.size + header_len:total]
    return _decode_header(header), blob


class FrameReader:
    """Incremental (sans-io) frame parser.

    Feed arbitrarily fragmented byte chunks; complete frames come out
    in order.  Partial data stays buffered — :attr:`buffered` exposes
    how much, and :attr:`at_boundary` tells whether the stream could
    end cleanly right now (no torn frame in progress).

    Raises:
        ProtocolError: as soon as a declared length exceeds the limits
            (the reader does not wait for the oversized body to arrive).
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes held that do not yet form a complete frame."""
        return len(self._buf)

    @property
    def at_boundary(self) -> bool:
        """True iff no partial frame is buffered."""
        return not self._buf

    def feed(self, data: bytes) -> list[tuple[dict, bytes]]:
        """Append bytes; return every frame completed by them."""
        self._buf.extend(data)
        frames: list[tuple[dict, bytes]] = []
        while True:
            if len(self._buf) < _PREFIX.size:
                break
            header_len, blob_len = _PREFIX.unpack_from(self._buf)
            _check_lengths(header_len, blob_len)
            total = _PREFIX.size + header_len + blob_len
            if len(self._buf) < total:
                break
            header = bytes(self._buf[_PREFIX.size:_PREFIX.size + header_len])
            blob = bytes(self._buf[_PREFIX.size + header_len:total])
            del self._buf[:total]
            frames.append((_decode_header(header), blob))
        return frames


async def read_frame(
    reader: asyncio.StreamReader,
) -> tuple[dict, bytes] | None:
    """Read one frame from an asyncio stream.

    Returns:
        ``(msg, blob)``, or ``None`` on a clean EOF (the peer closed
        the connection exactly between frames).

    Raises:
        ProtocolError: torn frame (EOF mid-frame) or any structural
            violation.
    """
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"torn frame: connection closed after {len(exc.partial)} B "
            f"of the {_PREFIX.size}-byte prefix"
        ) from exc
    header_len, blob_len = _PREFIX.unpack(prefix)
    _check_lengths(header_len, blob_len)
    try:
        body = await reader.readexactly(header_len + blob_len)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"torn frame: connection closed after {len(exc.partial)} B "
            f"of a {header_len + blob_len}-byte body"
        ) from exc
    return _decode_header(body[:header_len]), body[header_len:]


async def write_frame(
    writer: asyncio.StreamWriter, msg: dict, blob: bytes = b""
) -> None:
    """Serialise and send one frame, draining the transport."""
    writer.write(encode_frame(msg, blob))
    await writer.drain()
