"""Service drivers: one full run, and the repair-cap contention sweep.

:func:`run_service` is the engine behind ``repro-car serve`` and the CI
service-smoke job: boot a :class:`~repro.service.cluster.LocalCluster`,
kill a node, let the failure detector notice, run foreground clients
against the degraded stripes while the background repair streams, wait
for the repair to finish, and return one summary dict (optionally
writing the validated service trace).

:func:`run_bench_service` is ``repro-car bench-service``: the same run
swept over repair-bandwidth caps, producing the paper-motivating curve
— *recovery throughput vs foreground p99 latency* as the repair cap
loosens.  All latencies and throughputs are in **modelled** units, so
the numbers describe the modelled cluster, not the host machine.
"""

from __future__ import annotations

import asyncio
import math
from pathlib import Path

from repro.errors import ServiceError
from repro.service.cluster import LocalCluster

__all__ = [
    "quantile",
    "run_service",
    "run_bench_service",
    "render_service_table",
]


def quantile(values, q: float) -> float:
    """The q-quantile (nearest-rank) of a non-empty sequence."""
    if not values:
        raise ServiceError("quantile of an empty sample")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return float(ordered[rank - 1])


async def _client_load(
    cluster: LocalCluster,
    stripes,
    *,
    clients: int,
    min_reads: int,
) -> tuple[list[float], list[float]]:
    """Run ``clients`` concurrent readers until the repair finishes.

    Each client cycles through the degraded stripes; everyone issues at
    least ``min_reads`` reads even if the repair finishes instantly, so
    the latency sample is never empty.

    Returns:
        ``(all_latencies, contended_latencies)`` — the second lists only
        reads that completed while the repair was still running, which
        is the sample the contention curve quotes (reads after the
        repair finished see an idle link and would dilute p99).
    """
    repair_done = asyncio.Event()

    async def _watch_repair() -> None:
        while True:
            coord = cluster.coordinator
            if (
                coord is not None
                and coord.repair is not None
                and coord.repair.done.is_set()
            ):
                repair_done.set()
                return
            await asyncio.sleep(0.005)

    async def _one_client(offset: int) -> tuple[list[float], list[float]]:
        client = await cluster.client()
        contended: list[float] = []
        try:
            i = 0
            while i < min_reads or not repair_done.is_set():
                in_flight_during_repair = not repair_done.is_set()
                stripe = stripes[(offset + i) % len(stripes)]
                reply = await client.read(stripe)
                if not reply["ok"]:
                    raise ServiceError(
                        f"degraded read of stripe {stripe} returned "
                        "bytes that do not match ground truth"
                    )
                if in_flight_during_repair:
                    contended.append(client.latencies[-1])
                i += 1
                if i >= min_reads * 8:  # runaway guard
                    break
            return client.latencies, contended
        finally:
            await client.close()

    watcher = asyncio.create_task(_watch_repair())
    try:
        samples = await asyncio.gather(
            *(_one_client(j) for j in range(clients))
        )
    finally:
        watcher.cancel()
    return (
        [lat for all_lat, _ in samples for lat in all_lat],
        [lat for _, contended in samples for lat in contended],
    )


async def _run_once(
    *,
    workdir: Path,
    trace_path: Path | None,
    clients: int,
    min_reads: int,
    repair_timeout: float,
    **cluster_kwargs,
) -> dict:
    cluster = LocalCluster(workdir=workdir, **cluster_kwargs)
    await cluster.start()
    try:
        victim = cluster.pick_victim()
        cluster.kill_node(victim)
        # The detector must notice (timeout, not notification) before
        # degraded stripes exist to read.
        deadline = asyncio.get_running_loop().time() + repair_timeout
        while cluster.coordinator.repair is None:
            if asyncio.get_running_loop().time() > deadline:
                raise ServiceError(
                    f"failure of node {victim} was never detected"
                )
            await asyncio.sleep(0.005)
        stripes = list(cluster.state.affected_stripes())
        latencies, contended = await _client_load(
            cluster, stripes, clients=clients, min_reads=min_reads
        )
        # Quote contention numbers from reads that raced the repair;
        # fall back to the whole sample if the repair won outright.
        quoted = contended or latencies
        await cluster.wait_repair(timeout=repair_timeout)
        repair = cluster.coordinator.repair
        if repair.error is not None:
            raise repair.error
        if repair.crash is not None:
            raise repair.crash
        result = repair.result
        chunk_size = cluster.state.data.chunk_size
        model_s = max(
            1e-9, (repair.finished_model or 0) - (repair.started_model or 0)
        )
        summary = {
            "config": cluster.config.name,
            "strategy": cluster.strategy,
            "failed_node": victim,
            "stripes": len(stripes),
            "chunk_size": chunk_size,
            "verified": result.verified,
            "replayed": len(result.replayed),
            "executed": len(result.executed),
            "repair_cross_rack_bytes": result.cross_rack_bytes,
            "recovery_model_s": model_s,
            "recovery_throughput_bytes_per_s": (
                len(stripes) * chunk_size / model_s
            ),
            "reads": len(latencies),
            "contended_reads": len(contended),
            "degraded_reads": cluster.coordinator.degraded_reads,
            "client_p50_model_s": quantile(quoted, 0.50),
            "client_p99_model_s": quantile(quoted, 0.99),
            "client_mean_model_s": sum(quoted) / len(quoted),
            "admission": cluster.admission.snapshot(),
        }
        if trace_path is not None:
            summary["trace_path"] = str(cluster.write_trace(trace_path))
        return summary
    finally:
        await cluster.stop()


def run_service(
    *,
    workdir: str | Path,
    trace_path: str | Path | None = None,
    config: str = "CFS2",
    seed: int = 7,
    num_stripes: int = 10,
    chunk_size: int = 2048,
    chunkservers: int = 3,
    strategy: str = "car",
    clients: int = 3,
    min_reads: int = 6,
    speedup: float = 50.0,
    link_capacity: float = 8 * (1 << 20),
    repair_cap: float | None = None,
    client_priority: float = 1.0,
    repair_window: int = 4,
    crash_after_records: int | None = None,
    repair_timeout: float = 120.0,
) -> dict:
    """One full service run; returns the summary dict."""
    return asyncio.run(
        _run_once(
            workdir=Path(workdir),
            trace_path=Path(trace_path) if trace_path else None,
            clients=clients,
            min_reads=min_reads,
            repair_timeout=repair_timeout,
            config=config,
            seed=seed,
            num_stripes=num_stripes,
            chunk_size=chunk_size,
            chunkservers=chunkservers,
            strategy=strategy,
            speedup=speedup,
            link_capacity=link_capacity,
            repair_cap=repair_cap,
            client_priority=client_priority,
            repair_window=repair_window,
            crash_after_records=crash_after_records,
        )
    )


#: Default repair-bandwidth caps for the sweep, modelled bytes/s.
#: ``None`` = uncapped (repair still queues on the shared link).
DEFAULT_CAPS: tuple[float | None, ...] = (16 * 1024, 64 * 1024, None)


def run_bench_service(
    caps=DEFAULT_CAPS,
    *,
    workdir: str | Path,
    config: str = "CFS2",
    seed: int = 7,
    num_stripes: int = 12,
    chunk_size: int = 4096,
    clients: int = 4,
    min_reads: int = 8,
    client_priority: float = 2.0,
    strategy: str = "car",
    speedup: float = 10.0,
    link_capacity: float = 256 * 1024,
) -> list[dict]:
    """Sweep the repair-bandwidth cap; one summary row per cap."""
    workdir = Path(workdir)
    rows = []
    for i, cap in enumerate(caps):
        summary = run_service(
            workdir=workdir / f"cap{i}",
            config=config,
            seed=seed,
            num_stripes=num_stripes,
            chunk_size=chunk_size,
            strategy=strategy,
            clients=clients,
            min_reads=min_reads,
            speedup=speedup,
            link_capacity=link_capacity,
            repair_cap=cap,
            client_priority=client_priority,
        )
        summary["repair_cap_bytes_per_s"] = cap
        rows.append(summary)
    return rows


def _fmt_cap(cap) -> str:
    if cap is None:
        return "uncapped"
    if cap >= 1 << 20:
        return f"{cap / (1 << 20):.0f} MiB/s"
    return f"{cap / 1024:.0f} KiB/s"


def render_service_table(rows) -> str:
    """The bench-service sweep as a fixed-width text table."""
    header = (
        f"{'repair cap':>12} {'recovery B/s':>14} {'recovery s':>11} "
        f"{'client p50 s':>13} {'client p99 s':>13} {'reads':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{_fmt_cap(row.get('repair_cap_bytes_per_s')):>12} "
            f"{row['recovery_throughput_bytes_per_s']:>14.0f} "
            f"{row['recovery_model_s']:>11.3f} "
            f"{row['client_p50_model_s']:>13.5f} "
            f"{row['client_p99_model_s']:>13.5f} "
            f"{row['reads']:>6d}"
        )
    return "\n".join(lines)
