"""In-process service harness: one coordinator + N chunkserver daemons.

:class:`LocalCluster` boots the whole control/data plane inside one
asyncio event loop — real sockets on localhost, real frames, modelled
time — which is what `repro-car serve`, `bench-service`, the CI
service-smoke job, and the service tests all drive.  Nodes are dealt to
chunkserver daemons round-robin, so "coordinator + 3 chunkservers"
works for every CFS config regardless of node count.

:class:`ServiceClient` is the foreground workload: a persistent client
connection issuing (degraded) reads and recording their *modelled*
latencies.

The crash-recovery drill the acceptance test runs:

1. ``LocalCluster(..., crash_after_records=n)`` — the first repair
   incarnation dies after ``n`` journal records
   (:class:`~repro.errors.CoordinatorCrashError`);
2. :meth:`LocalCluster.restart_coordinator` — tears the dead
   coordinator down, boots a fresh one on the *same* cluster state and
   journal path, re-registers the chunkservers, and calls
   :meth:`~repro.service.coordinator.Coordinator.start_repair`, which
   resumes from the journal;
3. committed stripes replay byte-identically with zero re-shipped
   cross-rack traffic; only pending stripes execute live.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

from repro.cluster.failure import FailureInjector
from repro.errors import ConfigurationError, ServiceError
from repro.experiments.configs import ALL_CFS, CFSConfig, build_state
from repro.obs.tracer import validate_events
from repro.service.admission import (
    AdmissionController,
    ModeledLink,
    ServiceClock,
)
from repro.service.chunkserver import Chunkserver
from repro.service.coordinator import Coordinator
from repro.service.protocol import MsgType, read_frame, write_frame

__all__ = ["ServiceClient", "LocalCluster"]


class ServiceClient:
    """One foreground client connection to the coordinator."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        #: Modelled latency of every read this client issued, in order.
        self.latencies: list[float] = []

    @classmethod
    async def connect(cls, address: tuple[str, int]) -> "ServiceClient":
        """Dial the coordinator and complete the hello handshake."""
        reader, writer = await asyncio.open_connection(*address)
        await write_frame(
            writer, {"type": MsgType.HELLO, "role": "client"}
        )
        ack = await read_frame(reader)
        if ack is None or ack[0].get("type") != MsgType.HELLO_ACK:
            raise ServiceError("client hello was not acked")
        return cls(reader, writer)

    async def read(self, stripe: int) -> dict:
        """Read one stripe's chunk (degraded if it was lost).

        Returns the reply header with the raw bytes under ``data``.
        """
        await write_frame(
            self._writer, {"type": MsgType.READ, "stripe": int(stripe)}
        )
        frame = await read_frame(self._reader)
        if frame is None:
            raise ServiceError("coordinator closed during read")
        msg, blob = frame
        if msg.get("type") != MsgType.READ_REPLY:
            raise ServiceError(
                f"read of stripe {stripe} failed: {msg.get('error')}"
            )
        self.latencies.append(float(msg["latency_model_s"]))
        return {**msg, "data": blob}

    async def status(self) -> dict:
        """Fetch the coordinator's status snapshot."""
        await write_frame(self._writer, {"type": MsgType.STATUS})
        frame = await read_frame(self._reader)
        if frame is None or frame[0].get("type") != MsgType.STATUS_REPLY:
            raise ServiceError("status request failed")
        return frame[0]

    async def shutdown(self) -> None:
        """Ask the coordinator to stop (acked, then both sides close)."""
        await write_frame(self._writer, {"type": MsgType.SHUTDOWN})
        await read_frame(self._reader)
        await self.close()

    async def close(self) -> None:
        self._writer.close()


def _config_by_name(config: str | CFSConfig) -> CFSConfig:
    if isinstance(config, CFSConfig):
        return config
    by_name = {c.name: c for c in ALL_CFS}
    if config not in by_name:
        raise ConfigurationError(
            f"unknown config {config!r} (expected one of {sorted(by_name)})"
        )
    return by_name[config]


class LocalCluster:
    """Boot a full service (coordinator + chunkservers) in-process.

    Args:
        config: CFS config (object or name, e.g. ``"CFS2"``).
        seed: placement/data/failure seed.
        num_stripes / chunk_size: data-store shape (small defaults —
            this is a live service, not a throughput kernel).
        chunkservers: how many daemons the nodes are dealt to.
        workdir: directory for the journal (and any trace dumps).
        strategy: repair strategy label (``car``/``rr``/``rack-msr``;
            the last forces rack-aligned placement).
        speedup: modelled seconds per wall second.
        link_capacity: shared cross-rack core, modelled bytes/s.
        repair_cap / repair_burst / client_priority / priority_window:
            admission-control knobs (see
            :class:`~repro.service.admission.AdmissionController`).
        heartbeat_interval / suspect_after / dead_after /
        detector_interval: failure-detection cadence, modelled seconds.
        repair_window: stripes per streaming repair window.
        crash_after_records: arm a coordinator crash in the first repair
            incarnation (the crash-resume drill).
    """

    def __init__(
        self,
        *,
        config: str | CFSConfig = "CFS2",
        seed: int = 7,
        num_stripes: int = 12,
        chunk_size: int = 4096,
        chunkservers: int = 3,
        workdir: str | Path,
        strategy: str = "car",
        speedup: float = 400.0,
        link_capacity: float = 4 * (1 << 20),
        repair_cap: float | None = None,
        repair_burst: float | None = None,
        client_priority: float = 1.0,
        priority_window: float = 1.0,
        heartbeat_interval: float = 0.25,
        suspect_after: float = 1.0,
        dead_after: float = 2.5,
        detector_interval: float = 0.2,
        repair_window: int = 4,
        max_replans: int = 3,
        crash_after_records: int | None = None,
    ) -> None:
        if chunkservers < 1:
            raise ConfigurationError("need at least one chunkserver")
        self.num_chunkservers = chunkservers
        self.config = _config_by_name(config)
        self.seed = seed
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.workdir / "repair.journal"
        self.strategy = strategy
        placement_policy = (
            "rack_aligned" if strategy == "rack-msr" else "random"
        )
        self.state = build_state(
            self.config,
            seed=seed,
            with_data=True,
            chunk_size=chunk_size,
            num_stripes=num_stripes,
            placement_policy=placement_policy,
        )
        self.clock = ServiceClock(speedup=speedup)
        self.link = ModeledLink(link_capacity)
        self.admission = AdmissionController(
            self.link,
            self.clock,
            repair_cap_bytes_per_s=repair_cap,
            repair_burst_bytes=repair_burst,
            client_priority=client_priority,
            priority_window=priority_window,
        )
        self._coordinator_kwargs = dict(
            strategy=strategy,
            seed=seed,
            suspect_after=suspect_after,
            dead_after=dead_after,
            detector_interval=detector_interval,
            repair_window=repair_window,
            max_replans=max_replans,
        )
        self.heartbeat_interval = heartbeat_interval
        self.crash_after_records = crash_after_records
        self.coordinator: Coordinator | None = None
        self.chunkservers: list[Chunkserver] = []
        self._events_from_dead_coordinators: list[dict] = []

    # -- lifecycle -------------------------------------------------------

    def _deal_nodes(self, count: int) -> list[list[int]]:
        nodes = sorted(n.node_id for n in self.state.topology.nodes)
        dealt: list[list[int]] = [[] for _ in range(count)]
        for i, node in enumerate(nodes):
            dealt[i % count].append(node)
        return [d for d in dealt if d]

    async def start(self, chunkservers: int | None = None) -> None:
        """Boot the coordinator, then register every chunkserver."""
        count = chunkservers or self.num_chunkservers
        self.coordinator = Coordinator(
            self.state,
            self.clock,
            self.admission,
            journal_path=self.journal_path,
            crash_after_records=self.crash_after_records,
            **self._coordinator_kwargs,
        )
        self.crash_after_records = None
        address = await self.coordinator.start()
        for i, nodes in enumerate(self._deal_nodes(count)):
            cs = Chunkserver(
                f"cs{i}",
                nodes,
                self.state.data,
                self.state.placement,
                self.clock,
                heartbeat_interval=self.heartbeat_interval,
            )
            await cs.start(address)
            self.chunkservers.append(cs)

    async def stop(self) -> None:
        """Stop every daemon (chunkservers first, then the coordinator)."""
        for cs in self.chunkservers:
            await cs.stop()
        self.chunkservers = []
        if self.coordinator is not None:
            await self.coordinator.stop()

    async def restart_coordinator(self) -> Coordinator:
        """Replace a (crashed) coordinator; the repair journal survives.

        The dead coordinator's trace events are preserved, chunkservers
        are restarted against the new address, and if a primary failure
        was in flight the repair *resumes* from the journal.
        """
        assert self.coordinator is not None
        count = len(self.chunkservers) or self.num_chunkservers
        killed = set()
        for cs in self.chunkservers:
            killed.update(cs.nodes - cs.live_nodes)
        await self.stop_remember_events()
        self.coordinator = Coordinator(
            self.state,
            self.clock,
            self.admission,
            journal_path=self.journal_path,
            **self._coordinator_kwargs,
        )
        address = await self.coordinator.start()
        for i, nodes in enumerate(self._deal_nodes(count)):
            cs = Chunkserver(
                f"cs{i}",
                nodes,
                self.state.data,
                self.state.placement,
                self.clock,
                heartbeat_interval=self.heartbeat_interval,
            )
            # Kill before registering so a dead node never re-announces
            # itself ALIVE to the fresh coordinator's detector.
            for node in killed & cs.nodes:
                cs.kill_node(node)
            await cs.start(address)
            self.chunkservers.append(cs)
        if self.state.failed_node is not None:
            self.coordinator.start_repair()
        return self.coordinator

    async def stop_remember_events(self) -> None:
        """Tear down, folding the old coordinator's trace into history."""
        if self.coordinator is not None:
            self._events_from_dead_coordinators.extend(
                self.coordinator.all_events()
            )
        await self.stop()

    # -- drive -----------------------------------------------------------

    async def client(self) -> ServiceClient:
        """A new foreground client connection."""
        assert self.coordinator is not None and self.coordinator.address
        return await ServiceClient.connect(self.coordinator.address)

    def kill_node(self, node_id: int) -> None:
        """Kill one node: it silently vanishes from heartbeats."""
        for cs in self.chunkservers:
            if node_id in cs.nodes:
                cs.kill_node(node_id)
                return
        raise ServiceError(f"no chunkserver hosts node {node_id}")

    def kill_chunkserver(self, server_id: str) -> None:
        """Kill a whole chunkserver daemon abruptly."""
        for cs in self.chunkservers:
            if cs.server_id == server_id:
                cs.kill()
                return
        raise ServiceError(f"no chunkserver named {server_id!r}")

    def pick_victim(self) -> int:
        """A deterministic node to fail (same pick as the durable runs)."""
        probe = build_state(
            self.config,
            seed=self.seed,
            with_data=False,
            num_stripes=self.state.placement.num_stripes,
        )
        return FailureInjector(rng=self.seed).fail_random_node(
            probe
        ).failed_node

    async def wait_repair(self, timeout: float = 60.0) -> None:
        """Block until the repair reaches a terminal state.

        Raises:
            ServiceError: no repair started within the timeout.
        """
        deadline = asyncio.get_running_loop().time() + timeout
        while self.coordinator is not None and self.coordinator.repair is None:
            if asyncio.get_running_loop().time() > deadline:
                raise ServiceError("no repair started before the timeout")
            await asyncio.sleep(0.005)
        repair = self.coordinator.repair
        remaining = max(0.1, deadline - asyncio.get_running_loop().time())
        finished = await asyncio.to_thread(repair.join, remaining)
        if not finished:
            raise ServiceError("repair did not finish before the timeout")

    # -- artefacts -------------------------------------------------------

    def all_events(self) -> list[dict]:
        """Full service trace: dead coordinators' events plus current."""
        events = list(self._events_from_dead_coordinators)
        if self.coordinator is not None:
            events.extend(self.coordinator.all_events())
        return events

    def write_trace(self, path: str | Path | None = None) -> Path:
        """Validate and write the merged service trace as JSONL."""
        import json

        events = self.all_events()
        validate_events(events)
        path = Path(path) if path else self.workdir / "trace.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for record in events:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return path
