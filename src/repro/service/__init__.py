"""Live cluster service: coordinator + chunkserver daemons over asyncio.

This package turns the recovery *library* into a running *system* — the
setting where the paper's argument actually plays out: background CAR
repair and foreground degraded reads competing for the same scarce
cross-rack bandwidth.

- :mod:`repro.service.protocol` — length-prefixed JSON/binary wire
  frames (sans-io parser + asyncio helpers);
- :mod:`repro.service.heartbeat` — per-node leases and the
  UNKNOWN→ALIVE→SUSPECT→DEAD failure-detection state machine;
- :mod:`repro.service.admission` — the modelled clock, the shared
  cross-rack link, the token-bucket repair cap, and the
  client-priority knob;
- :mod:`repro.service.chunkserver` — the data daemon (chunk reads +
  heartbeats);
- :mod:`repro.service.coordinator` — the control daemon (membership,
  degraded reads, repair control);
- :mod:`repro.service.repair` — the paced, cancellable, crash-resumable
  background repair on top of :mod:`repro.durable`;
- :mod:`repro.service.cluster` — the in-process harness
  (:class:`LocalCluster`) and the foreground client;
- :mod:`repro.service.bench` — ``repro-car serve`` /
  ``bench-service`` drivers.

See ``docs/SERVICE.md`` for the protocol spec, the failure-detection
state machine, the admission knobs, and the crash-resume recipe.
"""

from repro.service.admission import (
    AdmissionController,
    ModeledLink,
    ServiceClock,
    TokenBucket,
)
from repro.service.bench import (
    render_service_table,
    run_bench_service,
    run_service,
)
from repro.service.chunkserver import Chunkserver
from repro.service.cluster import LocalCluster, ServiceClient
from repro.service.coordinator import Coordinator, resolve_strategy
from repro.service.heartbeat import (
    FailureDetector,
    LeaseTransition,
    NodeHealth,
)
from repro.service.protocol import (
    MAX_BLOB_BYTES,
    MAX_HEADER_BYTES,
    FrameReader,
    MsgType,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.service.repair import (
    DeadNodeAwareStrategy,
    RepairGovernor,
    RepairService,
)

__all__ = [
    "MsgType",
    "MAX_HEADER_BYTES",
    "MAX_BLOB_BYTES",
    "encode_frame",
    "decode_frame",
    "FrameReader",
    "read_frame",
    "write_frame",
    "NodeHealth",
    "LeaseTransition",
    "FailureDetector",
    "ServiceClock",
    "TokenBucket",
    "ModeledLink",
    "AdmissionController",
    "Chunkserver",
    "Coordinator",
    "resolve_strategy",
    "RepairGovernor",
    "DeadNodeAwareStrategy",
    "RepairService",
    "LocalCluster",
    "ServiceClient",
    "run_service",
    "run_bench_service",
    "render_service_table",
]
