"""The chunkserver daemon: serves chunk reads, heartbeats the coordinator.

One :class:`Chunkserver` hosts a *set* of modelled nodes (like a host
with several disks).  It runs two things on the shared event loop:

- a tiny asyncio server answering ``read-chunk`` frames from the
  coordinator with ``chunk-data`` frames (the raw chunk bytes as the
  frame blob — never JSON-encoded);
- a heartbeat task that registers with the coordinator (``hello``) and
  then sends a ``heartbeat`` frame every ``heartbeat_interval``
  *modelled* seconds, listing the nodes it still considers live.

Failure injection is subtractive: :meth:`Chunkserver.kill_node` drops
one node from both serving and heartbeats (a dead disk on a live host),
:meth:`Chunkserver.kill` silences the whole daemon abruptly (process
death) — either way the coordinator's failure detector notices by
timeout, never by notification, exactly like a real cluster.
"""

from __future__ import annotations

import asyncio

from repro.cluster.placement import Placement
from repro.cluster.state import DataStore
from repro.errors import ProtocolError, ReproError, ServiceError
from repro.service.admission import ServiceClock
from repro.service.protocol import MsgType, read_frame, write_frame

__all__ = ["Chunkserver"]


class Chunkserver:
    """One chunkserver daemon hosting ``node_ids``.

    Args:
        server_id: stable name (goes into heartbeats and traces).
        node_ids: modelled node ids this daemon serves.
        data: the shared chunk store (in-process stand-in for disks).
        placement: the cluster's chunk placement, used to refuse reads
            for chunks a node does not actually hold.
        clock: the service's modelled clock.
        heartbeat_interval: modelled seconds between heartbeats.
    """

    def __init__(
        self,
        server_id: str,
        node_ids,
        data: DataStore,
        placement: Placement,
        clock: ServiceClock,
        *,
        heartbeat_interval: float = 0.25,
    ) -> None:
        self.server_id = server_id
        self.nodes = frozenset(int(n) for n in node_ids)
        if not self.nodes:
            raise ServiceError(f"chunkserver {server_id!r} hosts no nodes")
        self.data = data
        self.placement = placement
        self.clock = clock
        self.heartbeat_interval = float(heartbeat_interval)
        self._live: set[int] = set(self.nodes)
        self._server: asyncio.AbstractServer | None = None
        self._hb_task: asyncio.Task | None = None
        self._coord_writer: asyncio.StreamWriter | None = None
        self.address: tuple[str, int] | None = None
        self.reads_served = 0

    # -- lifecycle -------------------------------------------------------

    async def start(self, coordinator_addr: tuple[str, int]) -> None:
        """Open the data server, register, and start heartbeating."""
        self._server = await asyncio.start_server(
            self._serve_connection, "127.0.0.1", 0
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self.address = (host, port)
        reader, writer = await asyncio.open_connection(*coordinator_addr)
        self._coord_writer = writer
        await write_frame(
            writer,
            {
                "type": MsgType.HELLO,
                "role": "chunkserver",
                "server": self.server_id,
                "nodes": sorted(self._live),
                "host": host,
                "port": port,
            },
        )
        ack = await read_frame(reader)
        if ack is None or ack[0].get("type") != MsgType.HELLO_ACK:
            raise ServiceError(
                f"chunkserver {self.server_id!r}: registration not acked"
            )
        self._hb_task = asyncio.create_task(self._heartbeat_loop())

    async def stop(self) -> None:
        """Graceful shutdown: stop heartbeats and close both sockets."""
        self.kill()
        if self._hb_task is not None:
            try:
                await self._hb_task
            except asyncio.CancelledError:
                pass
            self._hb_task = None

    def kill(self) -> None:
        """Abrupt daemon death: silence heartbeats, refuse new reads.

        Nothing is sent to the coordinator — its failure detector must
        discover the loss by lease timeout.
        """
        self._live.clear()
        if self._hb_task is not None:
            self._hb_task.cancel()
        if self._coord_writer is not None:
            self._coord_writer.close()
            self._coord_writer = None
        if self._server is not None:
            self._server.close()
            self._server = None

    def kill_node(self, node_id: int) -> None:
        """Drop one node: it leaves heartbeats and stops serving reads."""
        if node_id not in self.nodes:
            raise ServiceError(
                f"chunkserver {self.server_id!r} does not host node {node_id}"
            )
        self._live.discard(int(node_id))

    @property
    def live_nodes(self) -> frozenset[int]:
        """Nodes this daemon still serves and heartbeats."""
        return frozenset(self._live)

    # -- heartbeats ------------------------------------------------------

    async def _heartbeat_loop(self) -> None:
        writer = self._coord_writer
        try:
            while writer is not None:
                await asyncio.sleep(
                    self.clock.to_real(self.heartbeat_interval)
                )
                await write_frame(
                    writer,
                    {
                        "type": MsgType.HEARTBEAT,
                        "server": self.server_id,
                        "nodes": sorted(self._live),
                        "t": self.clock.now(),
                    },
                )
        except (ConnectionError, asyncio.CancelledError):
            return

    # -- data plane ------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ProtocolError:
                    break
                if frame is None:
                    break
                msg, _ = frame
                if msg.get("type") == MsgType.READ_CHUNK:
                    await self._handle_read_chunk(writer, msg)
                elif msg.get("type") == MsgType.SHUTDOWN:
                    break
                else:
                    await write_frame(
                        writer,
                        {
                            "type": MsgType.ERROR,
                            "error": f"unexpected frame {msg.get('type')!r}",
                        },
                    )
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _handle_read_chunk(
        self, writer: asyncio.StreamWriter, msg: dict
    ) -> None:
        stripe = int(msg["stripe"])
        chunk = int(msg["chunk"])
        node = int(msg["node"])
        if node not in self._live:
            await write_frame(
                writer,
                {
                    "type": MsgType.ERROR,
                    "stripe": stripe,
                    "chunk": chunk,
                    "error": f"node {node} is not served here",
                },
            )
            return
        try:
            layout = self.placement.stripe_layout(stripe)
            if layout.get(chunk) != node:
                raise ServiceError(
                    f"stripe {stripe} chunk {chunk} is not on node {node}"
                )
            blob = self.data.chunk(stripe, chunk).tobytes()
        except ReproError as exc:
            await write_frame(
                writer,
                {
                    "type": MsgType.ERROR,
                    "stripe": stripe,
                    "chunk": chunk,
                    "error": str(exc),
                },
            )
            return
        self.reads_served += 1
        await write_frame(
            writer,
            {
                "type": MsgType.CHUNK_DATA,
                "stripe": stripe,
                "chunk": chunk,
                "node": node,
            },
            blob,
        )
