"""The coordinator daemon: membership, degraded reads, repair control.

One asyncio server owns the whole control plane:

- **membership** — chunkservers register (``hello``) and heartbeat;
  a :class:`~repro.service.heartbeat.FailureDetector` poll loop turns
  silence into SUSPECT/DEAD transitions (timeout, never notification);
- **failure → repair** — the first DEAD node becomes the cluster's
  single failure (:meth:`~repro.cluster.state.ClusterState.fail_node`)
  and starts a background :class:`~repro.service.repair.RepairService`;
  later deaths are secondary: they cancel the in-flight repair window
  and fold into the re-plan (``CarSelector.degraded_solution``);
- **degraded reads** — clients ask for a stripe's chunk; if it lived on
  the failed node the coordinator fetches ``k`` helpers from the
  chunkservers, partially decodes per rack (Equation 7), combines, and
  replies with the rebuilt bytes.  Both read classes charge the shared
  modelled link through the admission controller, so their latency
  includes queueing behind repair traffic — the paper's contention.

The repair itself runs in a worker thread (see
:mod:`repro.service.repair`); the coordinator only starts it, relays
death notices to it, and folds its trace events into the service trace
on :meth:`Coordinator.stop`.  A coordinator killed mid-repair leaves
the write-ahead journal behind; constructing a fresh coordinator on the
same state and journal path and calling :meth:`Coordinator.start_repair`
resumes — committed stripes replay byte-identically with no re-shipped
cross-rack traffic.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.cluster.state import ClusterState, FailureEvent
from repro.erasure.repair import (
    combine_partials,
    execute_partial_decode,
    split_repair_vector,
)
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    ServiceError,
)
from repro.gf.field import gf
from repro.gf.vector import buffer_dtype
from repro.obs.tracer import Tracer
from repro.recovery.selector import CarSelector
from repro.service.admission import AdmissionController
from repro.service.heartbeat import FailureDetector, NodeHealth
from repro.service.protocol import MsgType, read_frame, write_frame
from repro.service.repair import RepairService

__all__ = ["resolve_strategy", "Coordinator"]


def resolve_strategy(label: str, seed: int = 0):
    """Map a service strategy label to a deterministic strategy instance.

    ``car`` (cross-rack-aware), ``rr`` (random-recovery baseline, seeded
    so resume re-solves identically), ``rack-msr`` (rack-aware MSR;
    requires rack-aligned placement).
    """
    from repro.recovery.baselines import CarStrategy, RandomRecoveryStrategy
    from repro.recovery.regenerating import RackAwareMSRStrategy

    if label == "car":
        return CarStrategy()
    if label == "rr":
        return RandomRecoveryStrategy(rng=seed)
    if label == "rack-msr":
        return RackAwareMSRStrategy()
    raise ConfigurationError(
        f"unknown service strategy {label!r} "
        "(expected 'car', 'rr', or 'rack-msr')"
    )


class Coordinator:
    """The control-plane daemon for one modelled cluster.

    Args:
        state: the cluster (with a :class:`~repro.cluster.state.DataStore`
            so repairs verify byte-for-byte).
        clock: the service's modelled clock.
        admission: shared-link admission controller.
        journal_path: write-ahead journal for the repair service.
        strategy: label (see :func:`resolve_strategy`) or strategy object.
        seed: forwarded to seeded strategies and the journal header.
        suspect_after / dead_after: failure-detector lease timeouts, in
            modelled seconds.
        detector_interval: poll period of the detector loop (modelled).
        repair_window: stripes per streaming window (small keeps
            cancellation latency low).
        max_replans: secondary-failure replans before the repair fails.
        crash_after_records: arm a coordinator crash inside the *next*
            repair session (the durable layer's crash hook).
        verify_reads: compare degraded-read reconstructions against the
            data store's ground truth and report the verdict.
        tracer: event-loop tracer (defaults to a fresh one).
    """

    def __init__(
        self,
        state: ClusterState,
        clock,
        admission: AdmissionController,
        *,
        journal_path,
        strategy="car",
        seed: int = 0,
        suspect_after: float = 1.0,
        dead_after: float = 2.5,
        detector_interval: float = 0.2,
        repair_window: int = 4,
        max_replans: int = 3,
        crash_after_records: int | None = None,
        verify_reads: bool = True,
        tracer: Tracer | None = None,
    ) -> None:
        if state.data is None:
            raise ConfigurationError(
                "the service needs a ClusterState with a DataStore "
                "(build_state(..., with_data=True))"
            )
        self.state = state
        self.clock = clock
        self.admission = admission
        self.journal_path = journal_path
        self.seed = seed
        self.strategy = (
            resolve_strategy(strategy, seed)
            if isinstance(strategy, str)
            else strategy
        )
        self.strategy_label = (
            strategy if isinstance(strategy, str)
            else type(strategy).__name__
        )
        self.detector = FailureDetector(suspect_after, dead_after)
        self.detector_interval = float(detector_interval)
        self.repair_window = repair_window
        self.max_replans = max_replans
        self.crash_after_records = crash_after_records
        self.verify_reads = verify_reads
        self.tracer = tracer if tracer is not None else Tracer()
        self.selector = CarSelector(state.topology, state.code.k)
        self._dtype = buffer_dtype(gf(state.code.w))

        self._server: asyncio.AbstractServer | None = None
        self._detector_task: asyncio.Task | None = None
        self._servers: dict[str, tuple[str, int]] = {}
        self.repair: RepairService | None = None
        self._repair_tracer: Tracer | None = None
        self.address: tuple[str, int] | None = None
        self.reads_served = 0
        self.degraded_reads = 0
        self._stopped = False

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the control socket and start the detector loop."""
        self._server = await asyncio.start_server(
            self._handle_connection, "127.0.0.1", 0
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        self._detector_task = asyncio.create_task(self._detector_loop())
        self.tracer.event(
            "service.coordinator.start",
            host=self.address[0],
            port=self.address[1],
            strategy=self.strategy_label,
        )
        return self.address

    async def stop(self) -> None:
        """Graceful shutdown: detector off, socket closed, traces merged.

        A still-running repair thread is left to finish on its own (it
        is a daemon thread journalling durably); its trace events up to
        now are folded in regardless.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._detector_task is not None:
            self._detector_task.cancel()
            try:
                await self._detector_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.tracer.event(
            "service.coordinator.stop",
            reads=self.reads_served,
            degraded_reads=self.degraded_reads,
        )

    def all_events(self) -> list[dict]:
        """Event-loop trace plus the repair thread's, in one stream.

        The repair worker records into its own tracer (tracers are not
        thread-safe); this is the merge point for export/validation.
        """
        events = list(self.tracer.events)
        if self._repair_tracer is not None:
            events.extend(self._repair_tracer.events)
        return events

    # -- failure detection ----------------------------------------------

    async def _detector_loop(self) -> None:
        while True:
            await asyncio.sleep(self.clock.to_real(self.detector_interval))
            now = self.clock.now()
            for tr in self.detector.check(now):
                self.tracer.event(
                    "service.lease",
                    node=tr.node_id,
                    server=tr.server_id,
                    old=tr.old.value if tr.old else None,
                    new=tr.new.value,
                    model_t=tr.at,
                )
                if tr.new is NodeHealth.DEAD:
                    self._on_node_dead(tr.node_id)

    def _on_node_dead(self, node_id: int) -> None:
        if self.state.failed_node is None:
            event = self.state.fail_node(node_id)
            self.tracer.event(
                "service.failure.primary",
                node=node_id,
                rack=event.failed_rack,
                stripes=event.num_stripes,
            )
            self.start_repair(event)
        elif node_id != self.state.failed_node:
            self.tracer.event("service.failure.secondary", node=node_id)
            if self.repair is not None and not self.repair.done.is_set():
                self.repair.mark_dead(node_id)

    # -- repair ----------------------------------------------------------

    def start_repair(self, event: FailureEvent | None = None) -> RepairService:
        """Start (or resume — the journal decides) the background repair.

        Call explicitly with no event on a fresh coordinator that took
        over an existing journal after a crash: the cluster state must
        already carry the primary failure.
        """
        if self.repair is not None and not self.repair.done.is_set():
            return self.repair
        if event is None:
            if self.state.failed_node is None:
                raise ServiceError(
                    "start_repair without an event needs a failed node "
                    "already applied to the cluster state"
                )
            event = self.state.fail_node(self.state.failed_node)
        self._repair_tracer = Tracer()
        loop = asyncio.get_running_loop()

        def _on_done(service: RepairService) -> None:
            try:
                loop.call_soon_threadsafe(self._repair_finished, service)
            except RuntimeError:
                # The event loop is already gone (coordinator torn down
                # while the daemon repair thread drained); the result is
                # still readable via repair.snapshot().
                pass

        self.repair = RepairService(
            self.state,
            event,
            self.strategy,
            self.journal_path,
            self.clock,
            self.admission,
            window=self.repair_window,
            tracer=self._repair_tracer,
            session_meta={
                "seed": self.seed,
                "strategy_label": self.strategy_label,
                "chunk_size": self.state.data.chunk_size,
            },
            max_replans=self.max_replans,
            crash_after_records=self.crash_after_records,
            on_done=_on_done,
        )
        self.crash_after_records = None
        self.repair.start()
        return self.repair

    def _repair_finished(self, service: RepairService) -> None:
        snap = service.snapshot()
        self.tracer.event("service.repair.done", **snap)

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ProtocolError as exc:
                    await write_frame(
                        writer, {"type": MsgType.ERROR, "error": str(exc)}
                    )
                    break
                if frame is None:
                    break
                msg, _ = frame
                mtype = msg.get("type")
                if mtype == MsgType.HELLO:
                    await self._handle_hello(writer, msg)
                elif mtype == MsgType.HEARTBEAT:
                    self._handle_heartbeat(msg)
                elif mtype == MsgType.READ:
                    await self._handle_read(writer, msg)
                elif mtype == MsgType.STATUS:
                    await write_frame(
                        writer,
                        {"type": MsgType.STATUS_REPLY, **self.status()},
                    )
                elif mtype == MsgType.SHUTDOWN:
                    await write_frame(writer, {"type": MsgType.SHUTDOWN})
                    asyncio.get_running_loop().create_task(self.stop())
                    break
                else:
                    await write_frame(
                        writer,
                        {
                            "type": MsgType.ERROR,
                            "error": f"unexpected frame {mtype!r}",
                        },
                    )
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _handle_hello(
        self, writer: asyncio.StreamWriter, msg: dict
    ) -> None:
        role = msg.get("role", "client")
        now = self.clock.now()
        if role == "chunkserver":
            server = str(msg["server"])
            self._servers[server] = (str(msg["host"]), int(msg["port"]))
            try:
                self.detector.register(server, msg["nodes"], now)
            except ServiceError as exc:
                await write_frame(
                    writer, {"type": MsgType.ERROR, "error": str(exc)}
                )
                return
            self.tracer.event(
                "service.register", server=server, nodes=list(msg["nodes"])
            )
        await write_frame(
            writer, {"type": MsgType.HELLO_ACK, "t": now, "role": role}
        )

    def _handle_heartbeat(self, msg: dict) -> None:
        now = self.clock.now()
        for tr in self.detector.beat(str(msg["server"]), msg["nodes"], now):
            self.tracer.event(
                "service.lease",
                node=tr.node_id,
                server=tr.server_id,
                old=tr.old.value if tr.old else None,
                new=tr.new.value,
                model_t=tr.at,
            )

    # -- read path -------------------------------------------------------

    async def _handle_read(
        self, writer: asyncio.StreamWriter, msg: dict
    ) -> None:
        stripe = int(msg["stripe"])
        start = self.clock.now()
        try:
            buf, chunk, degraded, racks = await self._read_stripe(stripe)
        except ReproError as exc:
            await write_frame(
                writer,
                {"type": MsgType.ERROR, "stripe": stripe, "error": str(exc)},
            )
            return
        # Cross-rack charge: one aggregated partial per intact rack
        # accessed (degraded), or the single chunk itself (direct).
        chunk_size = self.state.data.chunk_size
        delay = self.admission.client_delay(chunk_size * max(1, racks))
        await asyncio.sleep(self.clock.to_real(delay))
        end = start + delay
        ok = True
        if self.verify_reads:
            ok = self.state.data.matches(stripe, chunk, buf)
        self.reads_served += 1
        if degraded:
            self.degraded_reads += 1
        self.tracer.emit_span(
            "service.read",
            start,
            end,
            stripe=stripe,
            chunk=chunk,
            degraded=degraded,
            racks=racks,
            ok=ok,
        )
        await write_frame(
            writer,
            {
                "type": MsgType.READ_REPLY,
                "stripe": stripe,
                "chunk": chunk,
                "degraded": degraded,
                "racks": racks,
                "ok": ok,
                "latency_model_s": delay,
            },
            buf.tobytes(),
        )

    async def _read_stripe(self, stripe: int):
        """Return (buffer, chunk_index, degraded, intact_racks_accessed)."""
        layout = self.state.placement.stripe_layout(stripe)
        failed = self.state.failed_node
        if failed is not None and failed in layout.values():
            return await self._degraded_read(stripe)
        # Healthy stripe: serve its first chunk on a live node directly.
        dead = self.detector.dead_nodes()
        for chunk, node in sorted(layout.items()):
            if node not in dead:
                buf = await self._fetch_chunk(stripe, chunk, node)
                return buf, chunk, False, 1
        raise ServiceError(f"stripe {stripe}: no live node holds a chunk")

    async def _degraded_read(self, stripe: int):
        """Rebuild the lost chunk from ``k`` helpers, CAR-style."""
        view = self.state.stripe_view(stripe)
        secondary = self.detector.dead_nodes() - {self.state.failed_node}
        if secondary:
            solution = self.selector.degraded_solution(view, secondary)
        else:
            solution = self.selector.initial_solution(view)
        helpers = list(solution.helpers)
        node_of = {c: view.surviving[c] for c in helpers}
        bufs = await asyncio.gather(
            *(
                self._fetch_chunk(stripe, c, node_of[c])
                for c in helpers
            )
        )
        chunks = dict(zip(helpers, bufs))
        rack_map = solution.rack_map()
        plan = split_repair_vector(
            self.state.code, view.lost_chunk, helpers, rack_map
        )
        partials = execute_partial_decode(self.state.code, plan, chunks)
        rebuilt = combine_partials(self.state.code, partials)
        return (
            rebuilt,
            view.lost_chunk,
            True,
            len(solution.intact_racks_accessed),
        )

    async def _fetch_chunk(
        self, stripe: int, chunk: int, node: int
    ) -> np.ndarray:
        server = self.detector.server_of(node)
        addr = self._servers.get(server) if server else None
        if addr is None:
            raise ServiceError(
                f"no chunkserver is registered for node {node}"
            )
        reader, writer = await asyncio.open_connection(*addr)
        try:
            await write_frame(
                writer,
                {
                    "type": MsgType.READ_CHUNK,
                    "stripe": stripe,
                    "chunk": chunk,
                    "node": node,
                },
            )
            frame = await read_frame(reader)
            if frame is None:
                raise ServiceError(
                    f"chunkserver {server!r} closed during read"
                )
            msg, blob = frame
            if msg.get("type") != MsgType.CHUNK_DATA:
                raise ServiceError(
                    f"read of stripe {stripe} chunk {chunk} failed: "
                    f"{msg.get('error', msg.get('type'))}"
                )
            return np.frombuffer(blob, dtype=self._dtype).copy()
        finally:
            writer.close()

    # -- status ----------------------------------------------------------

    def status(self) -> dict:
        """Status-reply payload: membership, admission, repair, reads."""
        return {
            "model_t": self.clock.now(),
            "failed_node": self.state.failed_node,
            "nodes": {
                str(n): h for n, h in self.detector.snapshot().items()
            },
            "admission": self.admission.snapshot(),
            "repair": self.repair.snapshot() if self.repair else None,
            "reads": self.reads_served,
            "degraded_reads": self.degraded_reads,
        }
