"""The background repair service: paced, cancellable, crash-resumable.

The repair runs the *existing* durable pipeline — a
:class:`~repro.durable.session.RecoverySession` with ``streaming=True``
executing through
:meth:`~repro.recovery.executor.PlanExecutor.execute_streaming` — in a
worker thread, while the coordinator's event loop keeps serving
degraded reads.  Three small pieces adapt that pipeline to a live
service:

- :class:`RepairGovernor` rides the executor's progress-reporter hook
  (called once per shipped window with absolute counters).  For each
  window it charges the *cross-rack byte delta* to the admission
  controller and blocks the worker thread for the modelled wait — the
  token-bucket repair cap and the shared-link queueing are what pace
  recovery against foreground reads.  Between windows it also checks
  the cancellation flag and raises
  :class:`~repro.errors.RepairCancelled`: window commits have already
  hit the journal, so cancellation never loses durable progress.
- :class:`DeadNodeAwareStrategy` wraps any base strategy and, per
  stripe, swaps in :meth:`~repro.recovery.selector.CarSelector.
  degraded_solution` whenever the base pick would read a dead node.
  Stripe ids are preserved, which is exactly the contract
  :meth:`RecoverySession.resume` enforces on the re-solve.
- :class:`RepairService` owns the thread and the replan loop: run (or
  resume, if the journal already exists on disk), catch
  ``RepairCancelled``, fold the newly dead nodes into the strategy, and
  resume from the journal — committed stripes replay from their commit
  records with zero re-shipped cross-rack traffic.  An injected
  coordinator crash (``crash_after_records``) escapes as
  :class:`~repro.errors.CoordinatorCrashError` and parks the service in
  the ``crashed`` state; a fresh coordinator pointed at the same
  journal resumes it.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.cluster.state import ClusterState, FailureEvent
from repro.durable.session import DurableRecoveryResult, RecoverySession
from repro.errors import (
    CoordinatorCrashError,
    RepairCancelled,
    ReproError,
)
from repro.recovery.selector import CarSelector
from repro.recovery.solution import MultiStripeSolution
from repro.service.admission import AdmissionController, ServiceClock

__all__ = ["RepairGovernor", "DeadNodeAwareStrategy", "RepairService"]


class RepairGovernor:
    """Progress hook that paces and can cancel a streaming repair.

    Duck-types :class:`~repro.obs.progress.ProgressReporter`: the
    streaming executor calls :meth:`update` once per shipped window with
    absolute counters, and :meth:`finish` once at the end.  Both forward
    to an optional ``inner`` reporter so normal progress heartbeats keep
    flowing.

    Args:
        admission: where cross-rack byte deltas are charged.
        clock: converts the modelled wait into a worker-thread sleep.
        cancel: event set by the coordinator when a helper node dies.
        dead_nodes: callable returning the current dead-node set (put
            into the raised :class:`~repro.errors.RepairCancelled`).
        inner: optional real progress reporter to forward to.
    """

    def __init__(
        self,
        admission: AdmissionController,
        clock: ServiceClock,
        *,
        cancel: threading.Event | None = None,
        dead_nodes=None,
        inner=None,
    ) -> None:
        self.admission = admission
        self.clock = clock
        self._cancel = cancel
        self._dead_nodes = dead_nodes or (lambda: frozenset())
        self.inner = inner
        self._charged_cross = 0
        self.model_wait_seconds = 0.0
        self.windows_paced = 0

    def _pace(self, cross_rack_bytes: int) -> None:
        delta = cross_rack_bytes - self._charged_cross
        if delta > 0:
            self._charged_cross = cross_rack_bytes
            wait = self.admission.repair_delay(delta)
            self.model_wait_seconds += wait
            self.windows_paced += 1
            self.clock.sleep_sync(wait)

    def _check_cancel(self) -> None:
        if self._cancel is not None and self._cancel.is_set():
            dead = frozenset(self._dead_nodes())
            raise RepairCancelled(
                f"repair cancelled: nodes {sorted(dead)} died mid-repair",
                dead,
            )

    def update(
        self,
        stripes_done: int,
        *,
        windows_done: int = 0,
        cross_rack_bytes: int = 0,
        intra_rack_bytes: int = 0,
        journal_lag: int = 0,
        final: bool = False,
    ) -> None:
        """Per-window hook: charge admission, then maybe cancel."""
        self._pace(cross_rack_bytes)
        if self.inner is not None:
            self.inner.update(
                stripes_done,
                windows_done=windows_done,
                cross_rack_bytes=cross_rack_bytes,
                intra_rack_bytes=intra_rack_bytes,
                journal_lag=journal_lag,
                final=final,
            )
        # Cancel *after* pacing so the committed window is fully charged;
        # the raise happens between windows, when the journal is clean.
        self._check_cancel()

    def finish(
        self,
        stripes_done: int,
        *,
        windows_done: int = 0,
        cross_rack_bytes: int = 0,
        intra_rack_bytes: int = 0,
        journal_lag: int = 0,
    ) -> None:
        """End-of-execution hook: settle the final delta, forward."""
        self._pace(cross_rack_bytes)
        if self.inner is not None:
            self.inner.finish(
                stripes_done,
                windows_done=windows_done,
                cross_rack_bytes=cross_rack_bytes,
                intra_rack_bytes=intra_rack_bytes,
                journal_lag=journal_lag,
            )


class DeadNodeAwareStrategy:
    """Wrap a strategy so its per-stripe picks avoid dead nodes.

    Solves with the base strategy, then re-plans exactly the stripes
    whose chosen helpers live on a dead node, via
    :meth:`~repro.recovery.selector.CarSelector.degraded_solution`.
    Stripe ids are never added or removed — the resume contract.

    Args:
        base: any deterministic recovery strategy.
        dead_nodes: nodes to plan around (the primary failed node is
            already excluded by the cluster state itself).
    """

    def __init__(self, base, dead_nodes) -> None:
        self.base = base
        self.dead_nodes = frozenset(int(n) for n in dead_nodes)

    def solve(self, state: ClusterState) -> MultiStripeSolution:
        solution = self.base.solve(state)
        if not self.dead_nodes:
            return solution
        selector = CarSelector(state.topology, state.code.k)
        out = solution
        for per_stripe in solution.solutions:
            layout = state.placement.stripe_layout(per_stripe.stripe_id)
            if any(
                layout[c] in self.dead_nodes for c in per_stripe.helpers
            ):
                view = state.stripe_view(per_stripe.stripe_id)
                out = out.replace(
                    selector.degraded_solution(view, self.dead_nodes)
                )
        return out


class RepairService:
    """Owns the repair worker thread and its replan/resume loop.

    States (read via the attributes, synchronised by :attr:`done`):

    - running — the thread is executing/replanning;
    - finished — :attr:`result` holds the
      :class:`~repro.durable.session.DurableRecoveryResult`;
    - crashed — :attr:`crash` holds the
      :class:`~repro.errors.CoordinatorCrashError`; the journal on disk
      is the resume point for a fresh service;
    - failed — :attr:`error` holds a terminal error (replan budget
      exhausted or data loss).

    Args:
        state: the failed cluster (failure already applied).
        event: the primary failure being repaired.
        strategy: base recovery strategy (wrapped per attempt with the
            current dead-node set).
        journal_path: the write-ahead journal.  If the file already
            exists the first attempt *resumes* instead of running — that
            is the whole crash-recovery story.
        clock / admission: service pacing.
        window: stripes in flight per streaming window (small, so
            cancellation latency stays low).
        tracer: worker-thread tracer (keep it distinct from the event
            loop's — :class:`~repro.obs.tracer.Tracer` is not
            thread-safe; merge the event lists afterwards).
        progress: optional inner progress reporter.
        session_meta: extra journal-header keys.
        max_replans: cancellations absorbed before giving up.
        crash_after_records: arm a coordinator crash after the n-th
            journal record of the *first* attempt (test hook; mirrors
            the durable layer's crash matrix).
        on_done: callable invoked (from the worker thread) when the
            service reaches a terminal state.
    """

    def __init__(
        self,
        state: ClusterState,
        event: FailureEvent,
        strategy,
        journal_path: str | Path,
        clock: ServiceClock,
        admission: AdmissionController,
        *,
        window: int = 8,
        tracer=None,
        progress=None,
        session_meta: dict | None = None,
        max_replans: int = 3,
        crash_after_records: int | None = None,
        on_done=None,
    ) -> None:
        self.state = state
        self.event = event
        self.base_strategy = strategy
        self.journal_path = Path(journal_path)
        self.clock = clock
        self.admission = admission
        self.window = window
        self.tracer = tracer
        self.progress = progress
        self.session_meta = dict(session_meta or {})
        self.max_replans = max_replans
        self.crash_after_records = crash_after_records
        self.on_done = on_done

        self._dead: set[int] = set()
        self._cancel = threading.Event()
        self._thread: threading.Thread | None = None
        self.done = threading.Event()
        self.result: DurableRecoveryResult | None = None
        self.crash: CoordinatorCrashError | None = None
        self.error: ReproError | None = None
        self.replans = 0
        self.started_model: float | None = None
        self.finished_model: float | None = None

    # -- control ---------------------------------------------------------

    def start(self) -> None:
        """Launch the worker thread (idempotent per service)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-repair", daemon=True
        )
        self._thread.start()

    def mark_dead(self, node_id: int) -> None:
        """A helper node died: request cancellation and re-planning."""
        self._dead.add(int(node_id))
        self._cancel.set()

    def join(self, timeout: float | None = None) -> bool:
        """Wait for a terminal state; True iff reached in time."""
        finished = self.done.wait(timeout)
        if finished and self._thread is not None:
            self._thread.join(timeout=5.0)
        return finished

    @property
    def dead_nodes(self) -> frozenset[int]:
        """Secondary failures the repair is planning around."""
        return frozenset(self._dead)

    # -- worker ----------------------------------------------------------

    def _strategy(self):
        if not self._dead:
            return self.base_strategy
        return DeadNodeAwareStrategy(self.base_strategy, self._dead)

    def _session(self, crash_after_records, governor) -> RecoverySession:
        return RecoverySession(
            self.state,
            self.event,
            self._strategy(),
            self.journal_path,
            streaming=True,
            window=self.window,
            progress=governor,
            tracer=self.tracer,
            crash_after_records=crash_after_records,
            session_meta={
                **self.session_meta,
                "service": "repair",
                "dead_nodes": sorted(self._dead),
            },
        )

    def _run(self) -> None:
        self.started_model = self.clock.now()
        crash_budget = self.crash_after_records
        try:
            while True:
                self._cancel.clear()
                governor = RepairGovernor(
                    self.admission,
                    self.clock,
                    cancel=self._cancel,
                    dead_nodes=lambda: frozenset(self._dead),
                    inner=self.progress,
                )
                session = self._session(crash_budget, governor)
                crash_budget = None
                try:
                    if self.journal_path.exists():
                        self.result = session.resume()
                    else:
                        self.result = session.run()
                    return
                except RepairCancelled as exc:
                    self.replans += 1
                    if self.tracer is not None:
                        self.tracer.event(
                            "service.repair.replan",
                            dead_nodes=sorted(exc.dead_nodes),
                            replans=self.replans,
                        )
                    if self.replans > self.max_replans:
                        self.error = exc
                        return
                    continue
                except CoordinatorCrashError as exc:
                    self.crash = exc
                    return
                except ReproError as exc:
                    self.error = exc
                    return
        finally:
            self.finished_model = self.clock.now()
            self.done.set()
            if self.on_done is not None:
                self.on_done(self)

    # -- reporting -------------------------------------------------------

    def snapshot(self) -> dict:
        """Status-reply payload describing the repair's state."""
        if self.result is not None:
            status = "finished"
        elif self.crash is not None:
            status = "crashed"
        elif self.error is not None:
            status = "failed"
        elif self._thread is not None:
            status = "running"
        else:
            status = "idle"
        out = {
            "status": status,
            "failed_node": self.event.failed_node,
            "stripes": self.event.num_stripes,
            "replans": self.replans,
            "dead_nodes": sorted(self._dead),
            "started_model_s": self.started_model,
            "finished_model_s": self.finished_model,
        }
        if self.result is not None:
            out.update(
                verified=self.result.verified,
                replayed=len(self.result.replayed),
                executed=len(self.result.executed),
                cross_rack_bytes=self.result.cross_rack_bytes,
                live_cross_rack_bytes=self.result.live_cross_rack_bytes,
            )
        return out
