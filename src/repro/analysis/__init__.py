"""Analytic companions: cut-set bounds and the repair-cost landscape."""

from repro.analysis.bounds import (
    TradeoffPoint,
    cut_set_capacity,
    is_feasible,
    mbr_point,
    msr_point,
    tradeoff_curve,
)
from repro.analysis.landscape import LandscapeRow, repair_landscape

__all__ = [
    "TradeoffPoint",
    "cut_set_capacity",
    "is_feasible",
    "mbr_point",
    "msr_point",
    "tradeoff_curve",
    "LandscapeRow",
    "repair_landscape",
]
