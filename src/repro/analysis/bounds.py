"""Information-theoretic repair-bandwidth bounds (Dimakis et al. 2010).

The cut-set bound on the storage/repair-bandwidth trade-off for an
``(n, k, d)`` regenerating code storing a B-symbol file:

    B <= sum_{i=0}^{k-1} min(alpha, (d - i) * beta)

Its two corner points:

- **MSR** (minimum storage): ``alpha = B / k``,
  ``gamma = d * B / (k * (d - k + 1))``;
- **MBR** (minimum bandwidth): ``gamma = alpha =
  2 * d * B / (k * (2 * d - k + 1))``.

These give the yardsticks the analysis bench compares CAR against: an
RS code repairs at ``gamma = B`` (fetch k chunks of size B/k), MSR at
``~2 B / k`` for ``d = 2k - 2``, and CAR reduces not total traffic but
the *cross-rack* component of RS's ``gamma``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "TradeoffPoint",
    "msr_point",
    "mbr_point",
    "cut_set_capacity",
    "is_feasible",
    "tradeoff_curve",
    "rack_aware_msr_cross_rack",
    "piggyback_data_repair_cost",
    "piggyback_average_repair_cost",
]


@dataclass(frozen=True)
class TradeoffPoint:
    """One point on the storage/repair-bandwidth trade-off.

    Attributes:
        alpha: per-node storage (symbols).
        gamma: per-repair download (symbols) — ``d * beta``.
        label: name of the operating point.
    """

    alpha: float
    gamma: float
    label: str = ""


def _validate(n: int, k: int, d: int) -> None:
    if not 1 <= k <= n - 1:
        raise ConfigurationError(f"need 1 <= k <= n-1, got k={k}, n={n}")
    if not k <= d <= n - 1:
        raise ConfigurationError(f"need k <= d <= n-1, got d={d}")


def msr_point(file_size: float, n: int, k: int, d: int) -> TradeoffPoint:
    """The minimum-storage regenerating point."""
    _validate(n, k, d)
    alpha = file_size / k
    gamma = d * file_size / (k * (d - k + 1))
    return TradeoffPoint(alpha=alpha, gamma=gamma, label="MSR")


def mbr_point(file_size: float, n: int, k: int, d: int) -> TradeoffPoint:
    """The minimum-bandwidth regenerating point (alpha == gamma)."""
    _validate(n, k, d)
    gamma = 2.0 * d * file_size / (k * (2 * d - k + 1))
    return TradeoffPoint(alpha=gamma, gamma=gamma, label="MBR")


def cut_set_capacity(alpha: float, beta: float, k: int, d: int) -> float:
    """Max file size storable with per-node storage ``alpha`` and
    per-helper transfer ``beta`` (the cut-set bound's right side)."""
    if alpha < 0 or beta < 0:
        raise ConfigurationError("alpha and beta must be non-negative")
    return sum(min(alpha, (d - i) * beta) for i in range(k))


def is_feasible(
    file_size: float, alpha: float, gamma: float, k: int, d: int
) -> bool:
    """True iff (alpha, gamma) can store a ``file_size`` file."""
    if d <= 0:
        raise ConfigurationError("d must be positive")
    beta = gamma / d
    return cut_set_capacity(alpha, beta, k, d) >= file_size - 1e-9


def rack_aware_msr_cross_rack(alpha: float, kbar: int, dbar: int) -> float:
    """Minimum cross-rack download per single-node repair for a
    rack-aware MSR code (Chen & Barg, arXiv:1901.04419).

    In the two-tier model (intra-rack transfer free, ``dbar`` helper
    racks, rack-level reconstruction threshold ``kbar``) the rack-level
    cut-set bound gives, at the minimum-storage point,

        gamma_cross >= dbar * alpha / (dbar - kbar + 1)

    for a node storing ``alpha`` (chunk units, symbols — any unit; the
    result is in the same unit).  The striped product-matrix
    construction in :class:`~repro.erasure.regenerating.RackAwareMSRCode`
    meets this with equality at ``dbar = 2 kbar - 2``.

    Args:
        alpha: per-node storage.
        kbar: racks needed to reconstruct.
        dbar: helper racks contacted (``kbar <= dbar``).
    """
    if alpha < 0:
        raise ConfigurationError(f"alpha must be non-negative, got {alpha}")
    if kbar < 1 or dbar < kbar:
        raise ConfigurationError(
            f"need 1 <= kbar <= dbar, got kbar={kbar}, dbar={dbar}"
        )
    return dbar * alpha / (dbar - kbar + 1)


def piggyback_data_repair_cost(k: int, group_size: int) -> float:
    """Repair download for a data node of a piggybacked RS code, in
    chunk units (Rashmi et al., arXiv:1309.0186).

    A data node in a group of ``group_size`` downloads ``k - 1`` data
    ``b``-halves, two parity halves, and ``group_size - 1`` peer
    ``a``-halves: ``(k + group_size) / 2`` chunk units total, versus
    ``k`` for plain RS.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if not 1 <= group_size <= k:
        raise ConfigurationError(
            f"need 1 <= group_size <= k, got group_size={group_size}"
        )
    return (k + group_size) / 2.0


def piggyback_average_repair_cost(k: int, m: int) -> float:
    """Mean data-node repair download for the balanced ``m - 1``-group
    piggybacked layout, in chunk units."""
    if m < 2:
        raise ConfigurationError(f"piggybacking needs m >= 2, got {m}")
    if k < m - 1:
        raise ConfigurationError(
            f"cannot split k={k} data chunks into {m - 1} groups"
        )
    base, extra = divmod(k, m - 1)
    total = 0.0
    for g in range(m - 1):
        size = base + (1 if g < extra else 0)
        total += size * piggyback_data_repair_cost(k, size)
    return total / k


def tradeoff_curve(
    file_size: float, n: int, k: int, d: int, points: int = 10
) -> list[TradeoffPoint]:
    """Sample the optimal trade-off between the MSR and MBR corners.

    For each alpha between the two corner values, the minimal feasible
    gamma is found by binary search on the cut-set bound — the classic
    staircase curve of the Dimakis et al. paper.
    """
    if points < 2:
        raise ConfigurationError("need at least 2 points")
    msr = msr_point(file_size, n, k, d)
    mbr = mbr_point(file_size, n, k, d)
    out = []
    for i in range(points):
        t = i / (points - 1)
        alpha = msr.alpha + t * (mbr.alpha - msr.alpha)
        lo, hi = 0.0, max(msr.gamma, mbr.gamma) * 2 + 1
        for _ in range(60):
            mid = (lo + hi) / 2
            if is_feasible(file_size, alpha, mid, k, d):
                hi = mid
            else:
                lo = mid
        out.append(TradeoffPoint(alpha=alpha, gamma=hi, label=f"t={t:.2f}"))
    return out
