"""The repair-traffic landscape: where CAR sits among the alternatives.

Places the paper's contribution in the design space its related work
spans, per single-chunk repair (chunk units):

=================  =================  =========================
scheme             total traffic      cross-rack traffic
=================  =================  =========================
RS + RR            ``k``              ~``k * (r-1) / r``
RS + CAR           ``k``              ``d_j`` (min racks, measured)
LRC local          ``k / l``          0 with aligned groups
PM-MSR             ``2`` (d=2k-2)     ~``2 * (r-1) / r``
MSR bound          ``d/(d-k+1)``      (placement-dependent)
=================  =================  =========================

:func:`repair_landscape` computes the table for concrete parameters,
measuring CAR's column on a real cluster rather than assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bounds import msr_point
from repro.cluster.failure import FailureInjector
from repro.errors import ConfigurationError
from repro.experiments.configs import CFSConfig, build_state
from repro.recovery.baselines import CarStrategy, RandomRecoveryStrategy

__all__ = ["LandscapeRow", "repair_landscape"]


@dataclass(frozen=True)
class LandscapeRow:
    """One scheme's repair cost, in chunk units per repaired chunk.

    Attributes:
        scheme: label.
        total_chunks: chunks downloaded per repair (all scopes).
        cross_rack_chunks: chunks crossing the core per repair; None
            when it depends on a placement not modelled here.
        storage_overhead: raw-to-useful storage ratio.
    """

    scheme: str
    total_chunks: float
    cross_rack_chunks: float | None
    storage_overhead: float


def repair_landscape(
    config: CFSConfig,
    lrc_groups: int = 2,
    runs: int = 5,
    num_stripes: int = 50,
    base_seed: int = 77,
) -> list[LandscapeRow]:
    """Compute the repair-cost landscape for one CFS setting.

    RS+RR and RS+CAR cross-rack numbers are *measured* on random
    layouts of ``config``; LRC and MSR rows are analytic (their repair
    sets are deterministic).

    Args:
        config: the CFS (supplies k, m, and the rack layout).
        lrc_groups: ``l`` for the LRC comparison row (must divide k).
        runs: measurement repetitions for the RS rows.
        num_stripes: stripes per measurement run.
    """
    k, m = config.k, config.m
    if k % lrc_groups:
        raise ConfigurationError(
            f"lrc_groups={lrc_groups} must divide k={k}"
        )
    car_cross = []
    rr_cross = []
    for run in range(runs):
        seed = base_seed + run
        state = build_state(config, seed, num_stripes=num_stripes)
        FailureInjector(rng=seed).fail_random_node(state)
        stripes = len(state.affected_stripes())
        car = CarStrategy().solve(state)
        rr = RandomRecoveryStrategy(rng=seed).solve(state)
        car_cross.append(car.total_cross_rack_traffic() / stripes)
        rr_cross.append(rr.total_cross_rack_traffic() / stripes)

    n = k + m
    d_msr = 2 * k - 2
    msr = msr_point(float(k), n=max(n, d_msr + 1), k=k, d=d_msr)
    rows = [
        LandscapeRow(
            scheme="RS + RR",
            total_chunks=float(k),
            cross_rack_chunks=sum(rr_cross) / runs,
            storage_overhead=n / k,
        ),
        LandscapeRow(
            scheme="RS + CAR",
            total_chunks=float(k),
            cross_rack_chunks=sum(car_cross) / runs,
            storage_overhead=n / k,
        ),
        LandscapeRow(
            scheme=f"LRC(l={lrc_groups}) local, aligned",
            total_chunks=k / lrc_groups,
            cross_rack_chunks=0.0,
            storage_overhead=(k + lrc_groups + m) / k,
        ),
        LandscapeRow(
            scheme=f"PM-MSR (d={d_msr})",
            # gamma is in units of alpha-sized node contents; express it
            # in "chunks" of the same stored size for comparability.
            total_chunks=msr.gamma / msr.alpha,
            cross_rack_chunks=None,
            storage_overhead=n / k,
        ),
    ]
    return rows
