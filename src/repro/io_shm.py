"""Shared-memory chunk stores: zero-copy data for worker processes.

The parallel drivers fan work out over a :class:`ProcessPoolExecutor`;
without help, every task that touches chunk bytes pickles them across
the process boundary — at million-stripe scale the serialisation alone
dwarfs the GF arithmetic.  :class:`SharedChunkStore` instead places the
whole chunk array in one ``multiprocessing.shared_memory`` segment:

- the parent calls :meth:`SharedChunkStore.from_datastore` once, copying
  the :class:`~repro.cluster.state.DataStore` into the segment;
- workers receive the tiny picklable :class:`ShmHandle` and call
  :meth:`SharedChunkStore.attach`, mapping the same physical pages
  (zero-copy — no bytes cross the pipe);
- :meth:`SharedChunkStore.store` wraps the mapping in a read-only
  :class:`ShmDataStore` that satisfies the executor's DataStore
  interface (``chunk`` / ``matches`` / ``chunk_size`` / ``num_stripes``).

Lifecycle is explicit because shared memory outlives processes: every
attachment must :meth:`~SharedChunkStore.close` (detach) and exactly one
owner must :meth:`~SharedChunkStore.unlink` (destroy).  The creator's
context manager does both; attached stores only detach.  A finalizer
backstops the creator so an exception cannot leak the segment.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import ConfigurationError, UnknownChunkError

__all__ = ["ShmHandle", "ShmDataStore", "SharedChunkStore"]


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Opt an *attached* segment out of the resource tracker.

    Each process's resource tracker unlinks segments it believes leaked
    at interpreter exit.  An attaching worker does not own the segment —
    if its tracker unlinks it, the parent (and every sibling) loses the
    data mid-run.  Only the creator keeps tracker registration.

    Under the ``fork`` start method workers inherit the parent's tracker
    process, so attach-side registrations are harmless (the creator's
    ``unlink`` clears them) and unregistering here would race siblings;
    only spawned/forkserver workers — which run their *own* tracker —
    must opt out.
    """
    try:  # pragma: no cover - depends on interpreter internals
        import multiprocessing
        from multiprocessing import resource_tracker

        if multiprocessing.get_start_method(allow_none=True) == "fork":
            return
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


@dataclass(frozen=True)
class ShmHandle:
    """Everything a worker needs to map a shared chunk store.

    Attributes:
        name: the OS-level shared-memory segment name.
        num_stripes: stripes held.
        chunks_per_stripe: chunks per stripe (``k + m``).
        chunk_size: bytes per chunk.
        dtype: numpy dtype name of the chunk buffers ("uint8"/"uint16").
    """

    name: str
    num_stripes: int
    chunks_per_stripe: int
    chunk_size: int
    dtype: str


class ShmDataStore:
    """Read-only DataStore facade over a shared ``(S, n, L)`` array.

    ``chunk`` returns zero-copy views into the shared segment, so a
    worker's decode reads the parent's pages directly.  The store is
    deliberately read-only: recovery never mutates helper data, and a
    read-only contract keeps concurrent windows race-free.
    """

    def __init__(self, array: np.ndarray, chunk_size: int) -> None:
        self._array = array
        self.chunk_size = chunk_size
        self.num_stripes = int(array.shape[0])
        self._array.setflags(write=False)

    def chunk(self, stripe_id: int, chunk_index: int) -> np.ndarray:
        """The stored buffer for one chunk (a view, never a copy).

        Raises:
            UnknownChunkError: if the chunk does not exist.
        """
        s, n, _ = self._array.shape
        if not (0 <= stripe_id < s and 0 <= chunk_index < n):
            raise UnknownChunkError((stripe_id, chunk_index))
        return self._array[stripe_id, chunk_index]

    def matches(self, stripe_id: int, chunk_index: int, buf: np.ndarray) -> bool:
        """True iff ``buf`` equals the ground-truth chunk byte-for-byte."""
        return bool(np.array_equal(self.chunk(stripe_id, chunk_index), buf))


class SharedChunkStore:
    """One shared-memory segment holding every chunk of every stripe.

    Construct with :meth:`from_datastore` (creator) or :meth:`attach`
    (worker); never directly.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        handle: ShmHandle,
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._handle = handle
        self._owner = owner
        self._closed = False
        elements = handle.chunk_size // np.dtype(handle.dtype).itemsize
        self._array = np.ndarray(
            (handle.num_stripes, handle.chunks_per_stripe, elements),
            dtype=np.dtype(handle.dtype),
            buffer=shm.buf,
        )
        # Backstop: if the owner is garbage-collected without close(),
        # destroy the segment rather than leak it in /dev/shm.
        if owner:
            self._finalizer = weakref.finalize(
                self, _destroy_segment, shm
            )
        else:
            self._finalizer = None

    @classmethod
    def from_datastore(cls, data) -> "SharedChunkStore":
        """Copy a :class:`~repro.cluster.state.DataStore` into shared memory.

        Raises:
            ConfigurationError: if the store holds no stripes.
        """
        code = data.code
        n = code.k + code.m
        if data.num_stripes < 1:
            raise ConfigurationError("cannot share an empty data store")
        probe = data.chunk(0, 0)
        dtype = probe.dtype
        total = data.num_stripes * n * data.chunk_size
        shm = shared_memory.SharedMemory(create=True, size=total)
        handle = ShmHandle(
            name=shm.name,
            num_stripes=data.num_stripes,
            chunks_per_stripe=n,
            chunk_size=data.chunk_size,
            dtype=dtype.name,
        )
        store = cls(shm, handle, owner=True)
        for stripe in range(data.num_stripes):
            for idx in range(n):
                store._array[stripe, idx] = data.chunk(stripe, idx)
        store._array.setflags(write=False)
        return store

    @classmethod
    def attach(cls, handle: ShmHandle) -> "SharedChunkStore":
        """Map an existing segment from its handle (worker side)."""
        shm = shared_memory.SharedMemory(name=handle.name)
        _untrack(shm)
        return cls(shm, handle, owner=False)

    @property
    def handle(self) -> ShmHandle:
        """The picklable handle workers attach with."""
        return self._handle

    def store(self) -> ShmDataStore:
        """A DataStore-compatible read-only view of the segment."""
        return ShmDataStore(self._array, self._handle.chunk_size)

    def close(self) -> None:
        """Detach this process's mapping (safe to call twice).

        The creator's close also unlinks — one call tears the whole
        segment down, matching the context-manager contract.
        """
        if self._closed:
            return
        self._closed = True
        # Views into shm.buf must be dropped before close() or the
        # memoryview release raises BufferError.
        self._array = None
        if self._owner:
            if self._finalizer is not None:
                self._finalizer.detach()
            _destroy_segment(self._shm)
        else:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - views still alive
                pass  # the mapping unwinds at process exit

    # close() both detaches and (for the owner) unlinks; "unlink" is the
    # name callers reach for when tearing down, so alias it.
    unlink = close

    def __enter__(self) -> "SharedChunkStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _destroy_segment(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except BufferError:  # pragma: no cover - views still alive
        pass  # the mapping unwinds at process exit; unlink regardless
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass
